// Package ir defines the compiler intermediate representation the Alaska
// passes operate on: a control-flow graph of instructions in virtual-
// register form, with the analyses the paper's Algorithm 1 consumes —
// dominator trees, a natural-loop forest (with guaranteed preheaders, the
// equivalent of LLVM's -loop-simplify), liveness, and the pointer-flow
// graph.
//
// The IR deliberately mirrors the subset of LLVM IR the paper's
// transformation touches: loads and stores take an address operand;
// getelementptr (OpGEP) and phi (OpPhi) are the "transient" operations
// through which pointer-ness flows; calls may allocate (malloc/free) or
// escape pointers to external code; and the Alaska passes insert
// OpTranslate, OpRelease, and OpSafepoint.
package ir

import (
	"fmt"
	"strings"
)

// Type is the coarse value type the pointer-flow analysis needs: it only
// distinguishes pointer-typed values from everything else.
type Type int

const (
	// Int is any non-pointer value.
	Int Type = iota
	// Ptr marks values that may hold an address (and so, after the Alaska
	// transformation, may hold a handle).
	Ptr
)

// Op enumerates instruction opcodes.
type Op int

const (
	// OpConst materializes an integer constant.
	OpConst Op = iota
	// OpParam reads the i'th function parameter (Const field holds i).
	OpParam
	// OpBin is a binary ALU operation; Sub field selects the operator.
	OpBin
	// OpCmp compares two values; Sub field selects the predicate.
	OpCmp
	// OpPhi merges values at a join point; Args align with Block.Preds.
	OpPhi
	// OpGEP displaces a pointer: Args[0] is the base, Args[1] the byte
	// offset. Like LLVM's getelementptr it is transient for pointer flow.
	OpGEP
	// OpLoad reads from memory: Args[0] is the address. The Ty field is
	// the type of the loaded value (a load may itself produce a pointer —
	// that is what makes linked structures unhoistable).
	OpLoad
	// OpStore writes memory: Args[0] is the address, Args[1] the value.
	OpStore
	// OpAlloc is a call to malloc (after the Alaska allocation-replacement
	// pass, halloc): Args[0] is the size in bytes. Produces a Ptr.
	OpAlloc
	// OpFree releases Args[0].
	OpFree
	// OpCall invokes the function named Callee with Args. External callees
	// (not defined in the module) are what the escape pass guards.
	OpCall
	// OpRet returns; Args[0] is the optional return value.
	OpRet
	// OpBr branches unconditionally to Targets[0].
	OpBr
	// OpCondBr branches to Targets[0] if Args[0] != 0, else Targets[1].
	OpCondBr
	// OpTranslate is inserted by the Alaska compiler: Args[0] is a value
	// that may be a handle; the result is the raw address. Slot is the pin
	// set slot assigned by the tracking pass.
	OpTranslate
	// OpRelease marks the end of a translation's lifetime. Inserted from
	// liveness information and removed again before execution (§4.1.2);
	// it exists to delimit pin live ranges for slot assignment.
	OpRelease
	// OpSafepoint is a poll point (loop back edges, function entries,
	// before external calls).
	OpSafepoint
)

// Binary operator codes for OpBin's Sub field.
const (
	BinAdd = iota
	BinSub
	BinMul
	BinDiv
	BinRem
	BinAnd
	BinOr
	BinXor
	BinShl
	BinShr
)

// Comparison predicates for OpCmp's Sub field.
const (
	CmpEQ = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

// Instr is a single instruction. Instructions double as values: an
// instruction's result is referenced by pointing at the instruction.
type Instr struct {
	ID    int // dense per-function value number
	Op    Op
	Sub   int // operator/predicate selector for OpBin/OpCmp
	Ty    Type
	Args  []*Instr
	Const int64
	// Callee names the target of OpCall.
	Callee string
	// Targets holds successor blocks for OpBr/OpCondBr.
	Targets []*Block
	// Block is the containing basic block.
	Block *Block
	// Slot is the pin-set slot for OpTranslate (assigned by the tracking
	// pass; -1 until then).
	Slot int
}

// Block is a basic block.
type Block struct {
	Name   string
	Fn     *Func
	Instrs []*Instr
	Preds  []*Block
	// Index is the block's position in Fn.Blocks.
	Index int
}

// Func is a function: a CFG with an entry block (Blocks[0]).
type Func struct {
	Name    string
	NParams int
	// ParamTypes gives each parameter's Type (defaults to Int).
	ParamTypes []Type
	Blocks     []*Block
	nextID     int
	// PinSetSize is the pin-set slot count computed by the tracking pass.
	PinSetSize int
}

// Module is a collection of functions. Callees not defined in the module
// are external.
type Module struct {
	Funcs []*Func
}

// Lookup returns the function named name, or nil.
func (m *Module) Lookup(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// NumInstrs returns the module's static instruction count — the code-size
// metric behind the paper's Q2 (executable growth).
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs)
		}
	}
	return n
}

// NewFunc creates a function with nparams integer parameters and an entry
// block.
func NewFunc(name string, nparams int) *Func {
	f := &Func{Name: name, NParams: nparams, ParamTypes: make([]Type, nparams)}
	f.NewBlock("entry")
	return f
}

// NewBlock appends a new basic block.
func (f *Func) NewBlock(name string) *Block {
	b := &Block{Name: name, Fn: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Entry returns the function's entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// NumValues returns an upper bound on instruction IDs, for dense tables.
func (f *Func) NumValues() int { return f.nextID }

// newInstr allocates an instruction bound to the function.
func (f *Func) newInstr(op Op) *Instr {
	i := &Instr{ID: f.nextID, Op: op, Slot: -1}
	f.nextID++
	return i
}

// NewRawInstr allocates a fresh instruction with a dense ID but does not
// place it in any block; callers (compiler passes) insert it explicitly.
func (f *Func) NewRawInstr(op Op) *Instr { return f.newInstr(op) }

// Term returns the block's terminator, or nil if the block is unterminated.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	switch last.Op {
	case OpBr, OpCondBr, OpRet:
		return last
	}
	return nil
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Term()
	if t == nil {
		return nil
	}
	return t.Targets
}

// append adds an instruction to the block body (before any terminator
// would be; callers must not append past a terminator).
func (b *Block) append(i *Instr) *Instr {
	i.Block = b
	b.Instrs = append(b.Instrs, i)
	return i
}

// InsertBefore inserts newI immediately before pos within the block.
func (b *Block) InsertBefore(newI, pos *Instr) {
	newI.Block = b
	for k, in := range b.Instrs {
		if in == pos {
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[k+1:], b.Instrs[k:])
			b.Instrs[k] = newI
			return
		}
	}
	panic("ir: InsertBefore position not in block")
}

// InsertAfter inserts newI immediately after pos within the block.
func (b *Block) InsertAfter(newI, pos *Instr) {
	newI.Block = b
	for k, in := range b.Instrs {
		if in == pos {
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[k+2:], b.Instrs[k+1:])
			b.Instrs[k+1] = newI
			return
		}
	}
	panic("ir: InsertAfter position not in block")
}

// Remove deletes instruction i from the block.
func (b *Block) Remove(i *Instr) {
	for k, in := range b.Instrs {
		if in == i {
			b.Instrs = append(b.Instrs[:k], b.Instrs[k+1:]...)
			i.Block = nil
			return
		}
	}
	panic("ir: Remove of instruction not in block")
}

// computePreds rebuilds all predecessor lists from terminators.
func (f *Func) computePreds() {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Finish recomputes derived CFG state (predecessors, block indices) after
// construction or mutation. It must be called before running analyses.
func (f *Func) Finish() {
	for i, b := range f.Blocks {
		b.Index = i
	}
	f.computePreds()
}

// Verify checks structural invariants: every block terminated exactly
// once, phi arity matching predecessor count, operands defined in the same
// function, and the entry block having no predecessors.
func (f *Func) Verify() error {
	f.Finish()
	defined := make(map[*Instr]bool)
	for _, b := range f.Blocks {
		for _, i := range b.Instrs {
			defined[i] = true
		}
	}
	for bi, b := range f.Blocks {
		if len(b.Instrs) == 0 || b.Term() == nil {
			return fmt.Errorf("ir: %s: block %s not terminated", f.Name, b.Name)
		}
		for k, i := range b.Instrs {
			if t := b.Instrs[k]; k != len(b.Instrs)-1 {
				switch t.Op {
				case OpBr, OpCondBr, OpRet:
					return fmt.Errorf("ir: %s: terminator mid-block in %s", f.Name, b.Name)
				}
			}
			if i.Op == OpPhi {
				if len(i.Args) != len(b.Preds) {
					return fmt.Errorf("ir: %s: phi arity %d != %d preds in %s",
						f.Name, len(i.Args), len(b.Preds), b.Name)
				}
				if k > 0 && b.Instrs[k-1].Op != OpPhi {
					return fmt.Errorf("ir: %s: phi not at block head in %s", f.Name, b.Name)
				}
			}
			for _, a := range i.Args {
				if a == nil {
					return fmt.Errorf("ir: %s: nil operand of v%d in %s", f.Name, i.ID, b.Name)
				}
				if !defined[a] {
					return fmt.Errorf("ir: %s: operand v%d of v%d not defined in function",
						f.Name, a.ID, i.ID)
				}
			}
		}
		if bi == 0 && len(b.Preds) != 0 {
			return fmt.Errorf("ir: %s: entry block has predecessors", f.Name)
		}
	}
	return nil
}

// Verify checks every function in the module.
func (m *Module) Verify() error {
	for _, f := range m.Funcs {
		if err := f.Verify(); err != nil {
			return err
		}
	}
	return nil
}

// opNames maps opcodes to their printed mnemonics.
var opNames = map[Op]string{
	OpConst: "const", OpParam: "param", OpBin: "bin", OpCmp: "cmp",
	OpPhi: "phi", OpGEP: "gep", OpLoad: "load", OpStore: "store",
	OpAlloc: "alloc", OpFree: "free", OpCall: "call", OpRet: "ret",
	OpBr: "br", OpCondBr: "condbr", OpTranslate: "translate",
	OpRelease: "release", OpSafepoint: "safepoint",
}

// String renders the instruction for diagnostics.
func (i *Instr) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "v%d = %s", i.ID, opNames[i.Op])
	if i.Op == OpConst || i.Op == OpParam {
		fmt.Fprintf(&sb, " %d", i.Const)
	}
	if i.Op == OpCall {
		fmt.Fprintf(&sb, " @%s", i.Callee)
	}
	for _, a := range i.Args {
		fmt.Fprintf(&sb, " v%d", a.ID)
	}
	for _, t := range i.Targets {
		fmt.Fprintf(&sb, " %%%s", t.Name)
	}
	if i.Op == OpTranslate && i.Slot >= 0 {
		fmt.Fprintf(&sb, " [slot %d]", i.Slot)
	}
	return sb.String()
}

// String renders the function as readable pseudo-IR.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d params)", f.Name, f.NParams)
	if f.PinSetSize > 0 {
		fmt.Fprintf(&sb, " pinset=%d", f.PinSetSize)
	}
	sb.WriteString(" {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", i.String())
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
