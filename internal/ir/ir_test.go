package ir

import (
	"strings"
	"testing"
)

// buildStraightLine builds: entry: c1=1; c2=2; s=c1+c2; ret s
func buildStraightLine() *Func {
	f := NewFunc("straight", 0)
	b := NewBuilder(f)
	c1 := b.Const(1)
	c2 := b.Const(2)
	s := b.Add(c1, c2)
	b.Ret(s)
	f.Finish()
	return f
}

// buildDiamond builds an if/else diamond returning a phi.
func buildDiamond() *Func {
	f := NewFunc("diamond", 1)
	b := NewBuilder(f)
	p := b.Param(0, Int)
	zero := b.Const(0)
	cond := b.Cmp(CmpGT, p, zero)
	then := b.NewBlock("then")
	els := b.NewBlock("else")
	join := b.NewBlock("join")
	b.CondBr(cond, then, els)
	b.SetBlock(then)
	v1 := b.Const(10)
	b.Br(join)
	b.SetBlock(els)
	v2 := b.Const(20)
	b.Br(join)
	b.SetBlock(join)
	m := b.Phi(Int, v1, v2)
	b.Ret(m)
	f.Finish()
	return f
}

// buildNestedLoops builds a doubly-nested counted loop.
func buildNestedLoops(n int64) *Func {
	f := NewFunc("nested", 0)
	b := NewBuilder(f)
	zero := b.Const(0)
	end := b.Const(n)
	one := b.Const(1)
	outer := b.Loop("outer", zero, end, one)
	inner := b.Loop("inner", zero, end, one)
	_ = b.Add(outer.IndVar, inner.IndVar)
	b.Close(inner)
	b.Close(outer)
	b.Ret(nil)
	f.Finish()
	return f
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	for _, f := range []*Func{buildStraightLine(), buildDiamond(), buildNestedLoops(3)} {
		if err := f.Verify(); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
}

func TestVerifyRejectsUnterminated(t *testing.T) {
	f := NewFunc("bad", 0)
	b := NewBuilder(f)
	b.Const(1)
	if err := f.Verify(); err == nil {
		t.Error("unterminated block accepted")
	}
}

func TestVerifyRejectsBadPhiArity(t *testing.T) {
	f := buildDiamond()
	// Find the phi and break its arity.
	for _, blk := range f.Blocks {
		for _, i := range blk.Instrs {
			if i.Op == OpPhi {
				i.Args = i.Args[:1]
			}
		}
	}
	if err := f.Verify(); err == nil {
		t.Error("bad phi arity accepted")
	}
}

func TestPredsAndSuccs(t *testing.T) {
	f := buildDiamond()
	join := f.Blocks[3]
	if join.Name != "join" {
		t.Fatalf("unexpected block layout: %s", join.Name)
	}
	if len(join.Preds) != 2 {
		t.Errorf("join has %d preds, want 2", len(join.Preds))
	}
	entry := f.Entry()
	if len(entry.Succs()) != 2 {
		t.Errorf("entry has %d succs, want 2", len(entry.Succs()))
	}
}

func TestDomTreeDiamond(t *testing.T) {
	f := buildDiamond()
	dt := BuildDomTree(f)
	entry, then, els, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if dt.IDom(join) != entry {
		t.Errorf("idom(join) = %v, want entry", dt.IDom(join).Name)
	}
	if !dt.Dominates(entry, join) || !dt.Dominates(entry, then) {
		t.Error("entry should dominate all blocks")
	}
	if dt.Dominates(then, join) || dt.Dominates(els, join) {
		t.Error("branch arms must not dominate the join")
	}
	if !dt.Dominates(join, join) {
		t.Error("dominance must be reflexive")
	}
}

func TestInstrDominatesSameBlock(t *testing.T) {
	f := buildStraightLine()
	dt := BuildDomTree(f)
	b := f.Entry()
	first, second := b.Instrs[0], b.Instrs[1]
	if !dt.InstrDominates(first, second) {
		t.Error("earlier instruction should dominate later in same block")
	}
	if dt.InstrDominates(second, first) {
		t.Error("later instruction should not dominate earlier")
	}
}

func TestLoopForestSingleLoop(t *testing.T) {
	f := NewFunc("single", 0)
	b := NewBuilder(f)
	zero := b.Const(0)
	ten := b.Const(10)
	one := b.Const(1)
	l := b.Loop("l", zero, ten, one)
	b.Close(l)
	b.Ret(nil)
	f.Finish()
	lf, _ := BuildLoopForest(f)
	if len(lf.Top) != 1 {
		t.Fatalf("found %d top-level loops, want 1", len(lf.Top))
	}
	loop := lf.Top[0]
	if loop.Header != l.Header {
		t.Errorf("header = %s, want %s", loop.Header.Name, l.Header.Name)
	}
	if loop.Preheader == nil {
		t.Fatal("no preheader")
	}
	if loop.Depth != 1 {
		t.Errorf("depth = %d, want 1", loop.Depth)
	}
	if !loop.Contains(l.Body) || !loop.Contains(l.Latch) {
		t.Error("loop body/latch not in loop")
	}
	if loop.Contains(l.Exit) {
		t.Error("exit block should not be in loop")
	}
}

func TestLoopForestNesting(t *testing.T) {
	f := buildNestedLoops(4)
	lf, _ := BuildLoopForest(f)
	if len(lf.Top) != 1 {
		t.Fatalf("top loops = %d, want 1", len(lf.Top))
	}
	outer := lf.Top[0]
	if len(outer.Children) != 1 {
		t.Fatalf("outer children = %d, want 1", len(outer.Children))
	}
	inner := outer.Children[0]
	if inner.Parent != outer {
		t.Error("inner.Parent != outer")
	}
	if inner.Depth != 2 {
		t.Errorf("inner depth = %d, want 2", inner.Depth)
	}
	// Innermost table: inner body maps to inner loop, outer latch to outer.
	if got := lf.InnermostContaining(inner.Header); got != inner {
		t.Error("InnermostContaining(inner header) != inner")
	}
	for _, lat := range outer.Latches {
		if got := lf.InnermostContaining(lat); got != outer {
			t.Errorf("InnermostContaining(outer latch) = %v", got)
		}
	}
}

func TestPreheaderCreatedWhenMissing(t *testing.T) {
	// Hand-build a loop whose header has two outside predecessors.
	f := NewFunc("rough", 1)
	b := NewBuilder(f)
	p := b.Param(0, Int)
	zero := b.Const(0)
	cond := b.Cmp(CmpGT, p, zero)
	pre1 := b.NewBlock("pre1")
	pre2 := b.NewBlock("pre2")
	header := b.NewBlock("header")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	b.CondBr(cond, pre1, pre2)
	b.SetBlock(pre1)
	b.Br(header)
	b.SetBlock(pre2)
	b.Br(header)
	b.SetBlock(header)
	c2 := b.Cmp(CmpLT, zero, p)
	b.CondBr(c2, body, exit)
	b.SetBlock(body)
	b.Br(header)
	b.SetBlock(exit)
	b.Ret(nil)
	f.Finish()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}

	lf, dt := BuildLoopForest(f)
	if len(lf.Top) != 1 {
		t.Fatalf("top loops = %d, want 1", len(lf.Top))
	}
	l := lf.Top[0]
	if l.Preheader == nil {
		t.Fatal("no preheader created")
	}
	if l.Contains(l.Preheader) {
		t.Error("preheader must be outside the loop")
	}
	// The preheader must dominate the header.
	if !dt.Dominates(l.Preheader, l.Header) {
		t.Error("preheader does not dominate header")
	}
	// The split CFG must still verify.
	if err := f.Verify(); err != nil {
		t.Errorf("CFG broken after preheader split: %v", err)
	}
}

func TestLivenessStraightLine(t *testing.T) {
	f := buildStraightLine()
	lv := BuildLiveness(f)
	// Nothing live into or out of the single block.
	if len(lv.LiveIn[0]) != 0 || len(lv.LiveOut[0]) != 0 {
		t.Errorf("live sets nonempty: in=%v out=%v", lv.LiveIn[0], lv.LiveOut[0])
	}
}

func TestLivenessAcrossLoop(t *testing.T) {
	f := NewFunc("live", 0)
	b := NewBuilder(f)
	base := b.Alloc(b.Const(64))
	zero := b.Const(0)
	ten := b.Const(10)
	one := b.Const(1)
	l := b.Loop("l", zero, ten, one)
	// Use base inside the loop: it must be live through header and body.
	addr := b.GEP(base, l.IndVar)
	b.Store(addr, l.IndVar)
	b.Close(l)
	b.Ret(nil)
	f.Finish()
	lv := BuildLiveness(f)
	if !lv.LiveIn[l.Body.Index][base.ID] {
		t.Error("alloc result not live into loop body")
	}
	if !lv.LiveOut[l.Header.Index][base.ID] {
		t.Error("alloc result not live out of loop header")
	}
	if lv.LiveIn[l.Exit.Index][base.ID] {
		t.Error("alloc result live into exit despite no use after loop")
	}
}

func TestLivenessPhiUseAtPredecessor(t *testing.T) {
	f := buildDiamond()
	lv := BuildLiveness(f)
	then, els := f.Blocks[1], f.Blocks[2]
	// v1 defined in then, used by the join phi: live out of then only.
	var v1 *Instr
	for _, i := range then.Instrs {
		if i.Op == OpConst {
			v1 = i
		}
	}
	if !lv.LiveOut[then.Index][v1.ID] {
		t.Error("phi operand not live out of its predecessor")
	}
	if lv.LiveOut[els.Index][v1.ID] {
		t.Error("phi operand live out of the wrong predecessor")
	}
}

func TestInsertRemove(t *testing.T) {
	f := buildStraightLine()
	b := f.Entry()
	n0 := len(b.Instrs)
	extra := f.newInstr(OpConst)
	extra.Const = 99
	b.InsertBefore(extra, b.Instrs[1])
	if b.Instrs[1] != extra || len(b.Instrs) != n0+1 {
		t.Fatal("InsertBefore misplaced")
	}
	after := f.newInstr(OpConst)
	b.InsertAfter(after, extra)
	if b.Instrs[2] != after {
		t.Fatal("InsertAfter misplaced")
	}
	b.Remove(extra)
	b.Remove(after)
	if len(b.Instrs) != n0 {
		t.Fatalf("Remove left %d instrs, want %d", len(b.Instrs), n0)
	}
}

func TestModuleLookupAndCount(t *testing.T) {
	m := &Module{Funcs: []*Func{buildStraightLine(), buildDiamond()}}
	if m.Lookup("diamond") == nil || m.Lookup("nope") != nil {
		t.Error("Lookup misbehaved")
	}
	if m.NumInstrs() < 8 {
		t.Errorf("NumInstrs = %d, suspiciously small", m.NumInstrs())
	}
	if err := m.Verify(); err != nil {
		t.Error(err)
	}
}

func TestStringOutput(t *testing.T) {
	f := buildDiamond()
	s := f.String()
	for _, want := range []string{"func diamond", "entry:", "phi", "condbr", "ret"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestLoopBuilderSemantics(t *testing.T) {
	// The counted-loop skeleton must have phi args aligned with preds:
	// preds[0] = preheader (start value), preds[1] = latch (incremented).
	f := NewFunc("loopsem", 0)
	b := NewBuilder(f)
	zero := b.Const(0)
	three := b.Const(3)
	one := b.Const(1)
	l := b.Loop("l", zero, three, one)
	b.Close(l)
	b.Ret(nil)
	f.Finish()
	if err := f.Verify(); err != nil {
		t.Fatal(err)
	}
	iv := l.Header.Instrs[0]
	if iv.Op != OpPhi {
		t.Fatal("first header instr is not the induction phi")
	}
	for k, p := range l.Header.Preds {
		arg := iv.Args[k]
		if p == l.Latch && arg.Op != OpBin {
			t.Errorf("latch incoming arg is %v, want increment", arg)
		}
		if p != l.Latch && arg != zero {
			t.Errorf("preheader incoming arg is %v, want start const", arg)
		}
	}
}
