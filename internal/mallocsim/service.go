package mallocsim

import (
	"alaska/internal/mem"
	"alaska/internal/rt"
)

// Service adapts the allocator to the runtime's service interface. This is
// the "Alaska without a service" configuration of §5.4: backing memory
// comes from a conventional malloc and no movement policy is attached, so
// the only costs measured are translation and pin tracking.
type Service struct {
	a *Allocator
}

var _ rt.Service = (*Service)(nil)

// NewService returns a service backed by a fresh allocator on space.
func NewService(space *mem.Space) *Service {
	return &Service{a: New(space)}
}

// Allocator exposes the underlying allocator (for tests and stats).
func (s *Service) Allocator() *Allocator { return s.a }

// Init implements rt.Service.
func (s *Service) Init(*rt.Runtime) error { return nil }

// Deinit implements rt.Service.
func (s *Service) Deinit() error { return nil }

// Alloc implements rt.Service; the handle id is not needed because this
// service never moves objects.
func (s *Service) Alloc(_ uint32, size uint64) (mem.Addr, error) { return s.a.Alloc(size) }

// Free implements rt.Service.
func (s *Service) Free(_ uint32, addr mem.Addr, _ uint64) error { return s.a.Free(addr) }

// UsableSize implements rt.Service.
func (s *Service) UsableSize(addr mem.Addr) uint64 { return s.a.UsableSize(addr) }

// HeapExtent implements rt.Service.
func (s *Service) HeapExtent() uint64 { return s.a.HeapExtent() }

// ActiveBytes implements rt.Service.
func (s *Service) ActiveBytes() uint64 { return s.a.ActiveBytes() }

// Name implements rt.Service.
func (s *Service) Name() string { return "malloc" }
