package mallocsim

// Race-detector stress test for the size-class allocator behind the
// runtime's service interface: concurrent Alloc/Free/UsableSize across all
// size classes, including the run-recycling and purge paths. The allocator
// is the backing store for every multi-threaded baseline (Figure 12), so
// it must be safe under the same goroutine parallelism the sharded handle
// table now permits. Run under `go test -race ./internal/mallocsim`.

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"alaska/internal/mem"
)

func TestAllocatorConcurrentRace(t *testing.T) {
	space := mem.NewSpace()
	svc := NewService(space)
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	ops := 20000
	if testing.Short() {
		ops = 4000
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			type obj struct {
				addr mem.Addr
				size uint64
			}
			var mine []obj
			for op := 0; op < ops; op++ {
				if len(mine) == 0 || rng.Intn(2) == 0 {
					// Mix small classes with the large (>2048B) mmap path.
					size := uint64(8 << rng.Intn(9))
					a, err := svc.Alloc(uint32(w), size)
					if err != nil {
						t.Error(err)
						return
					}
					if got := svc.UsableSize(a); got < size {
						t.Errorf("UsableSize(%#x) = %d < requested %d", a, got, size)
						return
					}
					mine = append(mine, obj{a, size})
				} else {
					k := rng.Intn(len(mine))
					if err := svc.Free(uint32(w), mine[k].addr, mine[k].size); err != nil {
						t.Error(err)
						return
					}
					mine = append(mine[:k], mine[k+1:]...)
				}
			}
			for _, o := range mine {
				if err := svc.Free(uint32(w), o.addr, o.size); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := svc.ActiveBytes(); got != 0 {
		t.Errorf("ActiveBytes = %d after full teardown, want 0", got)
	}
}
