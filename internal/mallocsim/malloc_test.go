package mallocsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"alaska/internal/mem"
)

func TestAllocBasics(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	p1, err := a.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Fatal("duplicate addresses")
	}
	// Blocks are writable and independent.
	if err := s.WriteU64(p1, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteU64(p2, 2); err != nil {
		t.Fatal(err)
	}
	v, _ := s.ReadU64(p1)
	if v != 1 {
		t.Errorf("p1 = %d, want 1", v)
	}
	if a.ActiveBytes() != 48 {
		t.Errorf("ActiveBytes = %d, want 48", a.ActiveBytes())
	}
}

func TestAllocZeroGetsUniqueBlock(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	p1, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if p1 == p2 {
		t.Error("Alloc(0) returned the same address twice")
	}
}

func TestFreeAndReuse(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	p1, _ := a.Alloc(64)
	p2, _ := a.Alloc(64)
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	// Same class reuses the freed slot.
	p3, _ := a.Alloc(60)
	if p3 != p1 {
		t.Errorf("freed slot not reused: got %#x, want %#x", p3, p1)
	}
	_ = p2
	if a.ActiveBytes() != 64+60 {
		t.Errorf("ActiveBytes = %d, want 124", a.ActiveBytes())
	}
}

func TestFreeErrors(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	p, _ := a.Alloc(32)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double free not detected")
	}
	if err := a.Free(0xdead000); err == nil {
		t.Error("free of wild pointer not detected")
	}
}

func TestLargeAllocationsUseOwnMappings(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	p, err := a.Alloc(100 * 1024)
	if err != nil {
		t.Fatal(err)
	}
	if a.UsableSize(p) != 100*1024 {
		t.Errorf("UsableSize = %d", a.UsableSize(p))
	}
	if err := s.Write(p, make([]byte, 100*1024)); err != nil {
		t.Fatal(err)
	}
	rssBefore := s.RSS()
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if s.RSS() >= rssBefore {
		t.Errorf("large free did not release memory: RSS %d -> %d", rssBefore, s.RSS())
	}
}

func TestUsableSizeIsClassSize(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	p, _ := a.Alloc(50)
	if got := a.UsableSize(p); got != 64 {
		t.Errorf("UsableSize(50-byte alloc) = %d, want class size 64", got)
	}
}

func TestEmptyRunPurgeReleasesPages(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	var ptrs []mem.Addr
	// Fill exactly one 16 KiB run of 1024-byte objects.
	for i := 0; i < 16; i++ {
		p, err := a.Alloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(p, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	rssFull := s.RSS()
	for _, p := range ptrs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if s.RSS() >= rssFull {
		t.Errorf("empty-run purge did not reduce RSS: %d -> %d", rssFull, s.RSS())
	}
	_, _, purged := a.Stats()
	if purged == 0 {
		t.Error("no runs purged")
	}
}

// The defining failure of a non-moving allocator: churn that leaves one
// object per run strands nearly all resident pages.
func TestFragmentationStrandsMemory(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	var ptrs []mem.Addr
	for i := 0; i < 1024; i++ {
		p, err := a.Alloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Write(p, make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	rssFull := s.RSS()
	// Free all but one object per 16-slot run.
	for i, p := range ptrs {
		if i%16 == 0 {
			continue
		}
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if got := a.ActiveBytes(); got != 1024*64 {
		t.Fatalf("ActiveBytes = %d, want %d", got, 1024*64)
	}
	// RSS stays high even though 15/16 of the data is dead.
	if s.RSS() < rssFull/2 {
		t.Errorf("expected stranded memory, but RSS dropped %d -> %d", rssFull, s.RSS())
	}
}

func TestDefragHint(t *testing.T) {
	s := mem.NewSpace()
	a := New(s)
	var ptrs []mem.Addr
	for i := 0; i < 32; i++ { // two full runs of 1024B objects
		p, _ := a.Alloc(1024)
		ptrs = append(ptrs, p)
	}
	// Make run 0 sparse (1/16 occupied) and run 1 moderately occupied.
	for i := 1; i < 16; i++ {
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := 16; i < 24; i++ {
		if err := a.Free(ptrs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !a.DefragHint(ptrs[0]) {
		t.Error("lone object in sparse run should get a defrag hint")
	}
	if a.DefragHint(ptrs[24]) {
		t.Error("object in the denser run should not get a hint")
	}
}

// Property: after any interleaving of allocs and frees, the allocator's
// active-byte accounting equals the sum of live requested sizes, and every
// live block's contents are intact.
func TestAccountingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := mem.NewSpace()
		a := New(s)
		type obj struct {
			addr mem.Addr
			size uint64
			tag  byte
		}
		var live []obj
		var want uint64
		for i := 0; i < 400; i++ {
			if len(live) > 0 && rng.Intn(5) < 2 {
				k := rng.Intn(len(live))
				if a.Free(live[k].addr) != nil {
					return false
				}
				want -= live[k].size
				live = append(live[:k], live[k+1:]...)
			} else {
				size := uint64(1 + rng.Intn(3000))
				p, err := a.Alloc(size)
				if err != nil {
					return false
				}
				tag := byte(rng.Intn(256))
				buf := make([]byte, size)
				for j := range buf {
					buf[j] = tag
				}
				if s.Write(p, buf) != nil {
					return false
				}
				live = append(live, obj{p, size, tag})
				want += size
			}
		}
		if a.ActiveBytes() != want {
			return false
		}
		for _, o := range live {
			buf := make([]byte, o.size)
			if s.Read(o.addr, buf) != nil {
				return false
			}
			for _, b := range buf {
				if b != o.tag {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: no two live blocks overlap.
func TestNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := mem.NewSpace()
		a := New(s)
		type iv struct{ lo, hi uint64 }
		live := make(map[mem.Addr]iv)
		for i := 0; i < 300; i++ {
			if len(live) > 0 && rng.Intn(3) == 0 {
				for addr := range live {
					if a.Free(addr) != nil {
						return false
					}
					delete(live, addr)
					break
				}
			} else {
				size := uint64(1 + rng.Intn(2048))
				p, err := a.Alloc(size)
				if err != nil {
					return false
				}
				n := iv{uint64(p), uint64(p) + size}
				for _, o := range live {
					if n.lo < o.hi && o.lo < n.hi {
						return false
					}
				}
				live[p] = n
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
