// Package mallocsim implements a conventional, non-moving size-class
// allocator over the simulated address space — the stand-in for
// glibc/jemalloc in the paper's baselines.
//
// The design follows jemalloc's shape at the fidelity the experiments
// need: allocations are rounded to size classes; each class is served from
// fixed-size runs carved out of 1 MiB arena chunks; freed slots go on
// per-class free lists; a run whose last object is freed has its pages
// returned to the kernel (jemalloc's purging). What it cannot do — by
// construction, like every non-moving allocator — is relocate a live
// object, so a heap churned by allocations of drifting sizes strands
// partially-occupied runs and the resident set stays high (Figure 9's
// "Baseline" curve).
//
// The package also provides the application-assisted defragmentation hook
// (DefragHint) that models Redis's activedefrag protocol: the application
// walks its own objects, asks the allocator which would be better placed
// elsewhere, reallocates those itself, and rewrites its own pointers —
// the "thousands of lines of black magic" the paper contrasts Alaska with.
package mallocsim

import (
	"fmt"
	"sort"
	"sync"

	"alaska/internal/mem"
)

// Size classes, jemalloc-style: power-of-two spacing with midpoints.
var classes = []uint64{
	16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 768, 1024, 1536, 2048,
}

const (
	// runSize is the extent of one run (one size class per run).
	runSize = 16 * 1024
	// chunkSize is the arena growth unit.
	chunkSize = 1 << 20
	// largeThreshold routes allocations to the mmap-like large path.
	largeThreshold = 2048
)

// classIndex returns the smallest class that fits size, or -1 for large.
func classIndex(size uint64) int {
	for i, c := range classes {
		if size <= c {
			return i
		}
	}
	return -1
}

// run is a contiguous slab serving one size class.
type run struct {
	base     mem.Addr
	class    int
	slots    int
	freeBits []bool // true = slot free
	nFree    int
	bump     int // slots never yet allocated (suffix of the run)
}

func (r *run) slotAddr(i int) mem.Addr {
	return r.base + mem.Addr(uint64(i)*classes[r.class])
}

// occupancy returns the fraction of slots in use.
func (r *run) occupancy() float64 {
	used := r.slots - r.nFree - r.bump
	return float64(used) / float64(r.slots)
}

// Allocator is a non-moving size-class allocator.
type Allocator struct {
	mu    sync.Mutex
	space *mem.Space

	chunks   []*mem.Region
	chunkOff uint64 // bump offset within the newest chunk
	// runList is sorted by base; runs are located by binary search because
	// chunk bases are only page-aligned, not run-aligned.
	runList   []*run
	partial   [][]*run // per class: runs with free or bump capacity
	large     map[mem.Addr]*mem.Region
	largeSize map[mem.Addr]uint64
	sizes     map[mem.Addr]uint64 // requested size per live small object

	active uint64 // requested bytes of live objects
	extent uint64 // virtual bytes ever carved (chunks + live large)

	// stats
	allocs, frees, purgedRuns int64
}

// New returns an allocator drawing memory from space.
func New(space *mem.Space) *Allocator {
	return &Allocator{
		space:     space,
		partial:   make([][]*run, len(classes)),
		large:     make(map[mem.Addr]*mem.Region),
		largeSize: make(map[mem.Addr]uint64),
		sizes:     make(map[mem.Addr]uint64),
	}
}

// Alloc returns the address of a block of at least size bytes.
func (a *Allocator) Alloc(size uint64) (mem.Addr, error) {
	if size == 0 {
		size = 1
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.allocs++
	ci := classIndex(size)
	if ci < 0 {
		return a.allocLarge(size)
	}
	r, err := a.partialRun(ci)
	if err != nil {
		return 0, err
	}
	var slot int
	switch {
	case r.nFree > 0:
		// Reuse a freed slot (first fit within the run).
		slot = -1
		for i, free := range r.freeBits {
			if free {
				slot = i
				break
			}
		}
		r.freeBits[slot] = false
		r.nFree--
	default:
		slot = r.slots - r.bump
		r.bump--
	}
	if r.nFree == 0 && r.bump == 0 {
		a.removePartial(ci, r)
	}
	addr := r.slotAddr(slot)
	a.sizes[addr] = size
	a.active += size
	return addr, nil
}

// partialRun returns a run of class ci with capacity, creating one if
// needed.
func (a *Allocator) partialRun(ci int) (*run, error) {
	if list := a.partial[ci]; len(list) > 0 {
		return list[0], nil
	}
	base, err := a.carve(runSize)
	if err != nil {
		return nil, err
	}
	slots := int(runSize / classes[ci])
	r := &run{base: base, class: ci, slots: slots, freeBits: make([]bool, slots), bump: slots}
	// Carving is sequential, so new runs always have the highest base.
	a.runList = append(a.runList, r)
	a.partial[ci] = append(a.partial[ci], r)
	return r, nil
}

func (a *Allocator) removePartial(ci int, r *run) {
	list := a.partial[ci]
	for i, got := range list {
		if got == r {
			a.partial[ci] = append(list[:i], list[i+1:]...)
			return
		}
	}
}

// carve takes n bytes (page-multiple) from the newest chunk, mapping a new
// chunk when exhausted.
func (a *Allocator) carve(n uint64) (mem.Addr, error) {
	if len(a.chunks) == 0 || a.chunkOff+n > a.chunks[len(a.chunks)-1].Size() {
		c, err := a.space.Map(chunkSize)
		if err != nil {
			return 0, err
		}
		a.chunks = append(a.chunks, c)
		a.chunkOff = 0
		a.extent += chunkSize
	}
	c := a.chunks[len(a.chunks)-1]
	addr := c.Base() + mem.Addr(a.chunkOff)
	a.chunkOff += n
	return addr, nil
}

func (a *Allocator) allocLarge(size uint64) (mem.Addr, error) {
	r, err := a.space.Map(size)
	if err != nil {
		return 0, err
	}
	a.large[r.Base()] = r
	a.largeSize[r.Base()] = size
	a.active += size
	a.extent += r.Size()
	return r.Base(), nil
}

// Free releases the block at addr.
func (a *Allocator) Free(addr mem.Addr) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.frees++
	if r, ok := a.large[addr]; ok {
		a.active -= a.largeSize[addr]
		a.extent -= r.Size()
		delete(a.large, addr)
		delete(a.largeSize, addr)
		return a.space.Unmap(r)
	}
	size, ok := a.sizes[addr]
	if !ok {
		return fmt.Errorf("mallocsim: free of unknown address %#x", addr)
	}
	r := a.runOf(addr)
	if r == nil {
		return fmt.Errorf("mallocsim: address %#x not in any run", addr)
	}
	slot := int(uint64(addr-r.base) / classes[r.class])
	if r.freeBits[slot] {
		return fmt.Errorf("mallocsim: double free at %#x", addr)
	}
	r.freeBits[slot] = true
	if r.nFree == 0 && r.bump == 0 {
		a.partial[r.class] = append(a.partial[r.class], r)
	}
	r.nFree++
	delete(a.sizes, addr)
	a.active -= size
	// jemalloc-style purge: a fully-empty run returns its pages.
	if r.nFree+r.bump == r.slots {
		a.purgeRun(r)
	}
	return nil
}

// purgeRun resets a run to pristine (all-bump) state and releases its pages.
func (a *Allocator) purgeRun(r *run) {
	r.nFree = 0
	r.bump = r.slots
	for i := range r.freeBits {
		r.freeBits[i] = false
	}
	_ = a.space.DontNeed(r.base, runSize)
	a.purgedRuns++
}

// runOf locates the run containing addr by binary search over run bases.
func (a *Allocator) runOf(addr mem.Addr) *run {
	lo, hi := 0, len(a.runList)
	for lo < hi {
		mid := (lo + hi) / 2
		r := a.runList[mid]
		switch {
		case addr < r.base:
			hi = mid
		case addr >= r.base+runSize:
			lo = mid + 1
		default:
			return r
		}
	}
	return nil
}

// UsableSize returns the class size (or mapped size) of the block at addr.
func (a *Allocator) UsableSize(addr mem.Addr) uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.largeSize[addr]; ok {
		return s
	}
	if r := a.runOf(addr); r != nil {
		return classes[r.class]
	}
	return 0
}

// ActiveBytes returns the requested bytes of live objects.
func (a *Allocator) ActiveBytes() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active
}

// HeapExtent returns the virtual bytes under the allocator's management.
func (a *Allocator) HeapExtent() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.extent
}

// Stats returns (allocs, frees, purged runs).
func (a *Allocator) Stats() (allocs, frees, purged int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.allocs, a.frees, a.purgedRuns
}

// DefragHint reports whether the object at addr would benefit from being
// reallocated: it sits in a sparsely-occupied run while denser placement
// exists for its class. This models jemalloc's get_defrag_hint, the
// allocator half of Redis's activedefrag protocol; the application is
// responsible for reallocating, copying, and rewriting its own pointers.
func (a *Allocator) DefragHint(addr mem.Addr) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.large[addr]; ok {
		return false
	}
	r := a.runOf(addr)
	if r == nil {
		return false
	}
	occ := r.occupancy()
	if occ >= 0.5 {
		return false
	}
	// Moving helps only if some other run of the class is denser.
	for _, other := range a.partial[r.class] {
		if other != r && other.occupancy() > occ {
			return true
		}
	}
	return false
}

// FragPages returns, for diagnostics, the number of runs that are partially
// occupied (the stranded memory a non-moving allocator cannot recover).
func (a *Allocator) FragPages() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, r := range a.runList {
		used := r.slots - r.nFree - r.bump
		if used > 0 && used < r.slots {
			n++
		}
	}
	return n
}

// LiveAddrs returns all live small-object addresses in deterministic order
// (test helper).
func (a *Allocator) LiveAddrs() []mem.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]mem.Addr, 0, len(a.sizes))
	for addr := range a.sizes {
		out = append(out, addr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
