package reloc

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"alaska/internal/handle"
	"alaska/internal/mem"
	"alaska/internal/rt"
)

// bumpSvc is a minimal backing service for relocation tests.
type bumpSvc struct {
	space  *mem.Space
	region *mem.Region
	off    uint64
	active uint64
}

func (b *bumpSvc) Init(*rt.Runtime) error {
	r, err := b.space.Map(8 << 20)
	if err != nil {
		return err
	}
	b.region = r
	return nil
}
func (b *bumpSvc) Deinit() error { return nil }
func (b *bumpSvc) Alloc(_ uint32, size uint64) (mem.Addr, error) {
	aligned := (size + 15) &^ 15
	addr := b.region.Base() + mem.Addr(b.off)
	b.off += aligned
	b.active += size
	return addr, nil
}
func (b *bumpSvc) Free(_ uint32, _ mem.Addr, size uint64) error { b.active -= size; return nil }
func (b *bumpSvc) UsableSize(mem.Addr) uint64                   { return 0 }
func (b *bumpSvc) HeapExtent() uint64                           { return b.off }
func (b *bumpSvc) ActiveBytes() uint64                          { return b.active }
func (b *bumpSvc) Name() string                                 { return "bump" }

func newRelocRuntime(t *testing.T) (*rt.Runtime, *Mover, *mem.Space) {
	t.Helper()
	space := mem.NewSpace()
	var mover *Mover
	r, err := rt.New(space, &bumpSvc{space: space}, rt.WithFaultHandler(func(r *rt.Runtime, id uint32) error {
		return mover.Handler()(r, id)
	}))
	if err != nil {
		t.Fatal(err)
	}
	arena, err := NewRegionAllocator(space, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	mover = NewMover(r, arena)
	return r, mover, space
}

func TestUncontendedMoveCommits(t *testing.T) {
	r, mover, space := newRelocRuntime(t)
	th := r.NewThread()
	h, _ := r.Halloc(128)
	oldAddr, _ := th.Translate(h)
	if err := space.WriteU64(oldAddr, 0xFEED); err != nil {
		t.Fatal(err)
	}
	ok, err := mover.TryMove(h.ID())
	if err != nil || !ok {
		t.Fatalf("TryMove = %v, %v; want commit", ok, err)
	}
	newAddr, err := th.Translate(h)
	if err != nil {
		t.Fatal(err)
	}
	if newAddr == oldAddr {
		t.Error("object did not move")
	}
	v, _ := space.ReadU64(newAddr)
	if v != 0xFEED {
		t.Errorf("contents after move = %#x", v)
	}
	if mover.Commits.Load() != 1 || mover.Aborts.Load() != 0 {
		t.Errorf("commits=%d aborts=%d", mover.Commits.Load(), mover.Aborts.Load())
	}
}

func TestAccessDuringMoveAborts(t *testing.T) {
	r, mover, space := newRelocRuntime(t)
	th := r.NewThread()
	h, _ := r.Halloc(64)
	oldAddr, _ := th.Translate(h)
	if err := space.WriteU64(oldAddr, 7); err != nil {
		t.Fatal(err)
	}

	// Manually run the protocol steps to interleave an access mid-copy.
	entry, err := r.Table.BeginSpeculativeMove(h.ID())
	if err != nil {
		t.Fatal(err)
	}
	// A mutator translates while the entry is "moving": it faults, the
	// handler revalidates, and the translation succeeds at the OLD spot.
	gotAddr, err := th.Translate(h)
	if err != nil {
		t.Fatalf("translate during move: %v", err)
	}
	if gotAddr != oldAddr {
		t.Errorf("mid-move access went to %#x, want old %#x", gotAddr, oldAddr)
	}
	// The mover finishes its copy and tries to commit: it must lose.
	dst, err := mover.arena.Alloc(entry.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.Copy(dst, entry.Backing, entry.Size); err != nil {
		t.Fatal(err)
	}
	if r.Table.CommitSpeculativeMove(h.ID(), dst) {
		t.Fatal("commit succeeded after a concurrent access revalidated")
	}
	// Object remains at the old address with intact data.
	a, _ := th.Translate(h)
	if a != oldAddr {
		t.Errorf("object at %#x after aborted move, want %#x", a, oldAddr)
	}
}

func TestBeginMoveTwiceFails(t *testing.T) {
	r, _, _ := newRelocRuntime(t)
	h, _ := r.Halloc(32)
	if _, err := r.Table.BeginSpeculativeMove(h.ID()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Table.BeginSpeculativeMove(h.ID()); err == nil {
		t.Error("second BeginSpeculativeMove succeeded")
	}
}

func TestRevalidateIdempotent(t *testing.T) {
	r, _, _ := newRelocRuntime(t)
	h, _ := r.Halloc(32)
	if _, err := r.Table.BeginSpeculativeMove(h.ID()); err != nil {
		t.Fatal(err)
	}
	did, err := r.Table.Revalidate(h.ID())
	if err != nil || !did {
		t.Fatalf("first Revalidate = %v, %v", did, err)
	}
	did, err = r.Table.Revalidate(h.ID())
	if err != nil || did {
		t.Fatalf("second Revalidate = %v, %v; want no-op", did, err)
	}
}

func TestArenaExhaustionRollsBack(t *testing.T) {
	space := mem.NewSpace()
	var mover *Mover
	r, err := rt.New(space, &bumpSvc{space: space}, rt.WithFaultHandler(func(r *rt.Runtime, id uint32) error {
		return mover.Handler()(r, id)
	}))
	if err != nil {
		t.Fatal(err)
	}
	arena, err := NewRegionAllocator(space, mem.PageSize) // tiny arena
	if err != nil {
		t.Fatal(err)
	}
	mover = NewMover(r, arena)
	th := r.NewThread()
	h, _ := r.Halloc(2 * mem.PageSize)
	if ok, err := mover.TryMove(h.ID()); ok || err == nil {
		t.Errorf("TryMove with exhausted arena = %v, %v", ok, err)
	}
	// The entry must be valid again.
	if _, err := th.Translate(h); err != nil {
		t.Errorf("translate after rollback: %v", err)
	}
}

// The concurrency crucible: mutators hammer reads through handles while a
// mover relocates them; every read must see the object's immutable tag,
// and commits+aborts must cover all attempts.
func TestConcurrentMovesAndAccesses(t *testing.T) {
	if testing.Short() {
		t.Skip("slow concurrency soak (~4.5s); run without -short")
	}
	r, mover, space := newRelocRuntime(t)
	const nObjs = 128
	handles := make([]handle.Handle, nObjs)
	for i := range handles {
		h, err := r.Halloc(64)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		a, _ := r.Table.Translate(h)
		if err := space.WriteU64(a, uint64(i)*0x9E3779B9); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	quit := make(chan struct{})
	var reads atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := r.NewThread()
			defer th.Destroy()
			rng := rand.New(rand.NewSource(int64(g)))
			for {
				select {
				case <-quit:
					return
				default:
				}
				i := rng.Intn(nObjs)
				a, err := th.Translate(handles[i])
				if err != nil {
					t.Errorf("translate: %v", err)
					return
				}
				v, err := space.ReadU64(a)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if v != uint64(i)*0x9E3779B9 {
					t.Errorf("object %d read %#x, want %#x", i, v, uint64(i)*0x9E3779B9)
					return
				}
				reads.Add(1)
				th.Safepoint()
			}
		}(g)
	}
	// Let the readers actually start before moving (under -race, goroutine
	// startup can lag the main goroutine considerably).
	for reads.Load() == 0 {
		runtime.Gosched()
	}
	attempts := 0
	rng := rand.New(rand.NewSource(99))
	for k := 0; k < 3000; k++ {
		if k%64 == 0 {
			runtime.Gosched()
		}
		id := handles[rng.Intn(nObjs)].ID()
		ok, err := mover.TryMove(id)
		if err != nil {
			// Begin can fail if a previous move is mid-flight; with a
			// single mover that cannot happen, so any error is real.
			t.Fatalf("TryMove: %v", err)
		}
		_ = ok
		attempts++
	}
	close(quit)
	wg.Wait()
	if got := mover.Commits.Load() + mover.Aborts.Load(); got != int64(attempts) {
		t.Errorf("commits+aborts = %d, attempts = %d", got, attempts)
	}
	if mover.Commits.Load() == 0 {
		t.Error("no moves ever committed")
	}
	if reads.Load() == 0 {
		t.Error("no reads happened")
	}
	t.Logf("reads=%d commits=%d aborts=%d", reads.Load(), mover.Commits.Load(), mover.Aborts.Load())
}
