// Package reloc implements the concurrent (pause-free) relocation scheme
// the paper sketches in §7: instead of stopping the world for the duration
// of a move, the runtime marks an entry invalid, speculatively copies the
// object elsewhere, and then tries to commit by atomically revalidating
// the entry with the new address. Any thread that translates the handle
// mid-copy traps to the runtime, which revalidates the entry in place —
// aborting the move — and the access proceeds at the old location. The
// mover observes the failed commit and discards its copy. This mirrors the
// self-healing/forwarding race resolution of concurrent compactors like
// Shenandoah, built from nothing but the handle table.
//
// With the sharded table, each protocol step really is the single CAS the
// paper describes — BeginSpeculativeMove, Revalidate, and
// CommitSpeculativeMove all compare-and-swap the entry's atomically
// published word, and concurrent translations proceed lock-free — so the
// mover contends with readers only on the entries actually in flight,
// never on a table-wide lock.
package reloc

import (
	"fmt"
	"sync"
	"sync/atomic"

	"alaska/internal/mem"
	"alaska/internal/rt"
)

// Allocator supplies destination memory for speculative copies. It is
// deliberately separate from the runtime's service: a speculative copy
// must not disturb the service's object bookkeeping until the move
// commits.
type Allocator interface {
	Alloc(size uint64) (mem.Addr, error)
	Free(addr mem.Addr, size uint64)
}

// RegionAllocator is a simple bump/free-list Allocator over one mapped
// region, sufficient for relocation arenas.
type RegionAllocator struct {
	region *mem.Region
	bump   uint64
	free   map[uint64][]mem.Addr // by size
}

// NewRegionAllocator maps a size-byte arena in space.
func NewRegionAllocator(space *mem.Space, size uint64) (*RegionAllocator, error) {
	r, err := space.Map(size)
	if err != nil {
		return nil, err
	}
	return &RegionAllocator{region: r, free: make(map[uint64][]mem.Addr)}, nil
}

// Alloc implements Allocator.
func (a *RegionAllocator) Alloc(size uint64) (mem.Addr, error) {
	size = (size + 15) &^ 15
	if lst := a.free[size]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		a.free[size] = lst[:len(lst)-1]
		return addr, nil
	}
	if a.bump+size > a.region.Size() {
		return 0, fmt.Errorf("reloc: arena exhausted")
	}
	addr := a.region.Base() + mem.Addr(a.bump)
	a.bump += size
	return addr, nil
}

// Free implements Allocator.
func (a *RegionAllocator) Free(addr mem.Addr, size uint64) {
	size = (size + 15) &^ 15
	a.free[size] = append(a.free[size], addr)
}

// Owns reports whether addr lies inside this allocator's arena.
func (a *RegionAllocator) Owns(addr mem.Addr) bool { return a.region.Contains(addr) }

// Mover performs speculative concurrent moves.
type Mover struct {
	rt    *rt.Runtime
	arena Allocator

	// Commits and Aborts count move outcomes.
	Commits atomic.Int64
	Aborts  atomic.Int64

	// pending holds old copies awaiting grace-period reclamation: a
	// mutator may have translated the object just before the commit and
	// still be using the old raw pointer until its next safepoint, so the
	// memory can only be reused after every thread has crossed one — the
	// handshake concurrent compactors perform before recycling from-space.
	mu      sync.Mutex
	pending []graceItem
	// Reclaimed counts old copies recycled after their grace period.
	Reclaimed atomic.Int64
}

type graceItem struct {
	addr mem.Addr
	size uint64
	snap map[*rt.Thread]uint64
}

// NewMover builds a mover for the runtime using the given destination
// arena. Install Handler (or chain it) as the runtime's fault handler so
// concurrent accessors can abort in-flight moves.
func NewMover(r *rt.Runtime, arena Allocator) *Mover {
	return &Mover{rt: r, arena: arena}
}

// Handler returns the accessor-side fault handler: revalidate the entry in
// place, aborting any in-flight move, and let the translation retry.
func (m *Mover) Handler() rt.FaultHandler {
	return func(r *rt.Runtime, id uint32) error {
		_, err := r.Table.Revalidate(id)
		return err
	}
}

// TryMove speculatively relocates the object behind id into the arena. It
// returns true if the move committed, false if a concurrent access aborted
// it (the object stays where it was); both outcomes are correct. The
// caller should only attempt objects it believes are unpinned — a pinned
// object's raw pointers would dangle if the commit won, so TryMove must
// run either inside a barrier with pin knowledge, or against objects whose
// pin discipline the caller controls (see the concurrent tests).
//
// The data race the protocol tolerates: a mutator that already holds a
// translated pointer keeps using the old copy; if it writes, the commit
// losing those writes would be unsound, so callers must only move objects
// with no outstanding raw pointers. New accesses during the copy fault and
// abort the move, which is what makes the scheme safe without pauses.
func (m *Mover) TryMove(id uint32) (bool, error) {
	entry, err := m.rt.Table.BeginSpeculativeMove(id)
	if err != nil {
		return false, err
	}
	dst, err := m.arena.Alloc(entry.Size)
	if err != nil {
		// Roll back the moving state; nobody copied anything.
		if _, rerr := m.rt.Table.Revalidate(id); rerr != nil {
			return false, rerr
		}
		return false, err
	}
	if err := m.rt.Space.Copy(dst, entry.Backing, entry.Size); err != nil {
		if _, rerr := m.rt.Table.Revalidate(id); rerr != nil {
			return false, rerr
		}
		m.arena.Free(dst, entry.Size)
		return false, err
	}
	if m.rt.Table.CommitSpeculativeMove(id, dst) {
		m.Commits.Add(1)
		// The old memory is unreferenced by the table, but a mutator that
		// translated just before the commit may still read it until its
		// next safepoint. If the arena owns it, queue it for grace-period
		// reclamation; otherwise it is the service's, reclaimed by the
		// next compaction (the paper's "old memory can be freed" is the
		// service's job, not the mover's).
		if owner, ok := m.arena.(interface{ Owns(mem.Addr) bool }); ok && owner.Owns(entry.Backing) {
			m.mu.Lock()
			m.pending = append(m.pending, graceItem{entry.Backing, entry.Size, m.rt.EpochSnapshot()})
			m.mu.Unlock()
		}
		m.Reclaim()
		return true, nil
	}
	m.Aborts.Add(1)
	m.arena.Free(dst, entry.Size)
	return false, nil
}

// Reclaim frees queued old copies whose grace period has elapsed (every
// thread alive at commit time has since crossed a safepoint, parked, or
// exited). Called opportunistically from TryMove; callers may also invoke
// it directly.
func (m *Mover) Reclaim() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.pending) == 0 {
		return
	}
	// One epoch snapshot evaluates every pending item: an item is
	// reclaimable once each thread recorded at its commit has either
	// exited or advanced past its recorded epoch. (This is slightly
	// stricter than QuiescentSince — parked threads delay reclamation
	// until they run again — which only postpones reuse, never unsafely
	// hastens it.)
	cur := m.rt.EpochSnapshot()
	kept := m.pending[:0]
	for _, it := range m.pending {
		ok := true
		for t, e := range it.snap {
			if now, live := cur[t]; live && now == e {
				ok = false
				break
			}
		}
		if ok {
			m.arena.Free(it.addr, it.size)
			m.Reclaimed.Add(1)
			continue
		}
		kept = append(kept, it)
	}
	m.pending = kept
}
