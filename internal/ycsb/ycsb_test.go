package ycsb

import (
	"math"
	"testing"
)

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator('Z', 100, 100, 1); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := NewGenerator(WorkloadA, 0, 100, 1); err == nil {
		t.Error("zero records accepted")
	}
}

func TestLoadOps(t *testing.T) {
	g, err := NewGenerator(WorkloadA, 50, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	load := g.LoadOps()
	if len(load) != 50 {
		t.Fatalf("load ops = %d", len(load))
	}
	seen := make(map[string]bool)
	for _, op := range load {
		if op.Type != Insert || op.ValueSize != 128 {
			t.Errorf("bad load op %+v", op)
		}
		if seen[op.Key] {
			t.Errorf("duplicate key %s", op.Key)
		}
		seen[op.Key] = true
	}
}

func TestWorkloadMixes(t *testing.T) {
	const n = 20000
	cases := []struct {
		w          Workload
		wantRead   float64
		other      OpType
		wantOther  float64
		otherLabel string
	}{
		{WorkloadA, 0.5, Update, 0.5, "update"},
		{WorkloadB, 0.95, Update, 0.05, "update"},
		{WorkloadC, 1.0, Update, 0.0, "update"},
		{WorkloadF, 0.5, ReadModifyWrite, 0.5, "rmw"},
	}
	for _, c := range cases {
		g, err := NewGenerator(c.w, 1000, 100, 42)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[OpType]int)
		for i := 0; i < n; i++ {
			counts[g.Next().Type]++
		}
		readFrac := float64(counts[Read]) / n
		otherFrac := float64(counts[c.other]) / n
		if math.Abs(readFrac-c.wantRead) > 0.03 {
			t.Errorf("workload %c: read fraction %.3f, want %.2f", c.w, readFrac, c.wantRead)
		}
		if math.Abs(otherFrac-c.wantOther) > 0.03 {
			t.Errorf("workload %c: %s fraction %.3f, want %.2f", c.w, c.otherLabel, otherFrac, c.wantOther)
		}
	}
}

func TestZipfianSkew(t *testing.T) {
	g, err := NewGenerator(WorkloadC, 10000, 100, 7)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.Next().Key]++
	}
	// Zipf with theta .99 over 10k records: the hottest key takes a few
	// percent of traffic, and a small fraction of keys takes most of it.
	max := 0
	total := 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total != n {
		t.Fatalf("count mismatch")
	}
	if frac := float64(max) / n; frac < 0.01 {
		t.Errorf("hottest key fraction %.4f — distribution not skewed", frac)
	}
	if len(counts) < 100 {
		t.Errorf("only %d distinct keys — scrambling broken", len(counts))
	}
}

func TestKeysWithinRange(t *testing.T) {
	g, err := NewGenerator(WorkloadA, 100, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	valid := make(map[string]bool)
	for i := uint64(0); i < 100; i++ {
		valid[Key(i)] = true
	}
	for i := 0; i < 5000; i++ {
		op := g.Next()
		if !valid[op.Key] {
			t.Fatalf("generated key %q outside record range", op.Key)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := NewGenerator(WorkloadA, 1000, 100, 99)
	g2, _ := NewGenerator(WorkloadA, 1000, 100, 99)
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("generators diverged at op %d: %+v vs %+v", i, a, b)
		}
	}
}
