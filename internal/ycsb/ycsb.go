// Package ycsb implements the YCSB workload generator (Cooper et al.,
// SoCC '10) used to drive the Redis and memcached experiments: the
// standard scrambled-zipfian request distribution and the core workload
// mixes (A: 50/50 read/update, B: 95/5, C: read-only, F:
// read-modify-write).
package ycsb

import (
	"fmt"
	"math"
	"math/rand"
)

// OpType enumerates request kinds.
type OpType int

const (
	// Read fetches a record.
	Read OpType = iota
	// Update rewrites a record's value.
	Update
	// Insert adds a new record.
	Insert
	// ReadModifyWrite reads then rewrites a record.
	ReadModifyWrite
)

// Op is one generated request.
type Op struct {
	Type OpType
	Key  string
	// ValueSize applies to Update/Insert/RMW.
	ValueSize int
}

// Workload names a standard YCSB mix.
type Workload byte

// Standard workloads.
const (
	WorkloadA Workload = 'A' // 50% read, 50% update
	WorkloadB Workload = 'B' // 95% read, 5% update
	WorkloadC Workload = 'C' // 100% read
	WorkloadF Workload = 'F' // 50% read, 50% read-modify-write
)

// Generator produces YCSB operations.
type Generator struct {
	W           Workload
	RecordCount int
	// ValueSize is the value payload size (YCSB default: 10 fields x 100
	// bytes; we use a single configurable payload).
	ValueSize int
	rng       *rand.Rand
	zipf      *zipfian
}

// NewGenerator builds a generator over recordCount records.
func NewGenerator(w Workload, recordCount, valueSize int, seed int64) (*Generator, error) {
	switch w {
	case WorkloadA, WorkloadB, WorkloadC, WorkloadF:
	default:
		return nil, fmt.Errorf("ycsb: unknown workload %c", w)
	}
	if recordCount <= 0 {
		return nil, fmt.Errorf("ycsb: recordCount must be positive")
	}
	rng := rand.New(rand.NewSource(seed))
	return &Generator{
		W:           w,
		RecordCount: recordCount,
		ValueSize:   valueSize,
		rng:         rng,
		zipf:        newZipfian(uint64(recordCount), 0.99, rng),
	}, nil
}

// Key formats record i as a YCSB key.
func Key(i uint64) string { return FixedKey("user", i, 12) }

// FixedKey renders prefix + i zero-padded to width digits —
// Sprintf("%s%0*d", prefix, width, i) without the fmt machinery: one
// string allocation, nothing else. It runs once per generated op in
// every workload harness and the load generator (which also uses it for
// its counter keyspace). An i wider than width digits widens like
// Sprintf instead of truncating.
func FixedKey(prefix string, i uint64, width int) string {
	digits := 1
	for v := i; v >= 10; v /= 10 {
		digits++
	}
	if digits < width {
		digits = width
	}
	n := len(prefix) + digits
	var stack [32]byte
	b := stack[:]
	if n > len(b) {
		b = make([]byte, n)
	}
	b = b[:n]
	copy(b, prefix)
	for j := n - 1; j >= len(prefix); j-- {
		b[j] = '0' + byte(i%10)
		i /= 10
	}
	return string(b)
}

// LoadOps returns the initial-load insert sequence.
func (g *Generator) LoadOps() []Op {
	ops := make([]Op, g.RecordCount)
	for i := range ops {
		ops[i] = Op{Type: Insert, Key: Key(uint64(i)), ValueSize: g.ValueSize}
	}
	return ops
}

// Next generates the next request.
func (g *Generator) Next() Op {
	key := Key(g.zipf.next())
	r := g.rng.Float64()
	switch g.W {
	case WorkloadA:
		if r < 0.5 {
			return Op{Type: Read, Key: key}
		}
		return Op{Type: Update, Key: key, ValueSize: g.ValueSize}
	case WorkloadB:
		if r < 0.95 {
			return Op{Type: Read, Key: key}
		}
		return Op{Type: Update, Key: key, ValueSize: g.ValueSize}
	case WorkloadC:
		return Op{Type: Read, Key: key}
	case WorkloadF:
		if r < 0.5 {
			return Op{Type: Read, Key: key}
		}
		return Op{Type: ReadModifyWrite, Key: key, ValueSize: g.ValueSize}
	}
	return Op{Type: Read, Key: key}
}

// zipfian is the YCSB scrambled-zipfian chooser: zipf-distributed ranks
// hashed across the keyspace so hot keys are spread out.
type zipfian struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	rng   *rand.Rand
}

func newZipfian(n uint64, theta float64, rng *rand.Rand) *zipfian {
	z := &zipfian{n: n, theta: theta, rng: rng}
	z.zetan = zeta(n, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

// next returns a scrambled zipf-distributed record index in [0, n).
func (z *zipfian) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	var rank uint64
	switch {
	case uz < 1:
		rank = 0
	case uz < 1+math.Pow(0.5, z.theta):
		rank = 1
	default:
		rank = uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	}
	if rank >= z.n {
		rank = z.n - 1
	}
	// FNV-style scramble to spread hot ranks over the keyspace.
	return fnv64(rank) % z.n
}

func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
