package ycsb

import (
	"testing"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
)

func TestRunnerLoadAndRunBaseline(t *testing.T) {
	store := kv.NewStore(kv.NewMallocBackend(), 0)
	gen, err := NewGenerator(WorkloadA, 500, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(store, gen, 10*time.Microsecond)
	if err := r.Load(); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 500 {
		t.Fatalf("loaded %d records", store.Len())
	}
	if err := r.Run(5000); err != nil {
		t.Fatal(err)
	}
	if r.ReadLat.Count() == 0 || r.UpdateLat.Count() == 0 {
		t.Error("no latencies recorded")
	}
	// Workload A is 50/50.
	ratio := float64(r.ReadLat.Count()) / float64(r.ReadLat.Count()+r.UpdateLat.Count())
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("read ratio %.2f, want ~0.5", ratio)
	}
	if r.Now() == 0 {
		t.Error("simulated clock did not advance")
	}
}

// §5.5's latency comparison: Anchorage costs some latency vs the
// baseline (the paper measures +13% reads / +17% updates on Workload F).
func TestRunnerAnchorageLatencyOverheadBounded(t *testing.T) {
	run := func(b kv.Backend) (readMean, updMean float64) {
		store := kv.NewStore(b, 256<<10) // small maxmemory to force churn
		gen, err := NewGenerator(WorkloadF, 400, 256, 2)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(store, gen, 10*time.Microsecond)
		if err := r.Load(); err != nil {
			t.Fatal(err)
		}
		if err := r.Run(20000); err != nil {
			t.Fatal(err)
		}
		return r.ReadLat.Mean(), r.UpdateLat.Mean()
	}
	baseR, baseU := run(kv.NewMallocBackend())
	anch, err := kv.NewAnchorageBackend(anchorage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	anchR, anchU := run(anch)
	// Anchorage may pause requests, but average latency must stay within
	// a small multiple of baseline (the paper: +13%/+17%; we allow 2x for
	// the simulated pause attribution).
	if anchR > baseR*2 {
		t.Errorf("anchorage read latency %.1fus vs baseline %.1fus — pauses out of control", anchR, baseR)
	}
	if anchU > baseU*2 {
		t.Errorf("anchorage update latency %.1fus vs baseline %.1fus", anchU, baseU)
	}
}

func TestRunnerRMWCountsAsUpdate(t *testing.T) {
	store := kv.NewStore(kv.NewMallocBackend(), 0)
	gen, err := NewGenerator(WorkloadF, 100, 64, 3)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(store, gen, time.Microsecond)
	if err := r.Load(); err != nil {
		t.Fatal(err)
	}
	if err := r.Run(2000); err != nil {
		t.Fatal(err)
	}
	if r.UpdateLat.Count() == 0 {
		t.Error("workload F produced no RMW latencies")
	}
	// RMWs cost two service times: their mean must exceed reads'.
	if r.UpdateLat.Mean() <= r.ReadLat.Mean() {
		t.Errorf("RMW mean %.2f <= read mean %.2f", r.UpdateLat.Mean(), r.ReadLat.Mean())
	}
}
