package ycsb

import (
	"fmt"
	"time"

	"alaska/internal/kv"
	"alaska/internal/stats"
)

// Runner executes a YCSB workload against a kv.Store, recording per-op
// latencies in simulated time (each op costs the backend's maintenance
// pauses plus a fixed service time) — the measurement loop behind the
// paper's Redis latency numbers (§5.5: +13% read / +17% update under
// Anchorage).
type Runner struct {
	Store *kv.Store
	Gen   *Generator
	// OpTime is the base simulated service time per operation.
	OpTime time.Duration

	// ReadLat and UpdateLat collect simulated latencies in microseconds.
	ReadLat, UpdateLat *stats.Histogram

	now time.Duration
}

// NewRunner builds a runner; the store should be freshly loaded via Load.
func NewRunner(store *kv.Store, gen *Generator, opTime time.Duration) *Runner {
	bounds := []float64{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 5000, 20000}
	return &Runner{
		Store:     store,
		Gen:       gen,
		OpTime:    opTime,
		ReadLat:   stats.NewHistogram(bounds),
		UpdateLat: stats.NewHistogram(bounds),
	}
}

// Load performs the initial-load phase.
func (r *Runner) Load() error {
	val := make([]byte, r.Gen.ValueSize)
	for _, op := range r.Gen.LoadOps() {
		if err := r.Store.Set(op.Key, val); err != nil {
			return fmt.Errorf("ycsb load: %w", err)
		}
	}
	return nil
}

// Run executes n operations, advancing simulated time and charging any
// backend maintenance pauses to the op that incurred them (the way a
// stop-the-world pause lands on whichever request was in flight).
func (r *Runner) Run(n int) error {
	val := make([]byte, r.Gen.ValueSize)
	for i := 0; i < n; i++ {
		op := r.Gen.Next()
		lat := r.OpTime
		switch op.Type {
		case Read:
			if _, err := r.Store.Get(op.Key); err != nil {
				return err
			}
		case Update, Insert:
			if err := r.Store.Set(op.Key, val[:op.ValueSize]); err != nil {
				return err
			}
		case ReadModifyWrite:
			if _, err := r.Store.Get(op.Key); err != nil {
				return err
			}
			if err := r.Store.Set(op.Key, val[:op.ValueSize]); err != nil {
				return err
			}
			lat += r.OpTime
		}
		r.now += lat
		pause := r.Store.Maintain(r.now)
		r.now += pause
		lat += pause
		us := float64(lat.Nanoseconds()) / 1e3
		switch op.Type {
		case Read:
			r.ReadLat.Observe(us)
		default:
			r.UpdateLat.Observe(us)
		}
	}
	return nil
}

// Now returns the simulated clock.
func (r *Runner) Now() time.Duration { return r.now }
