// Package workloads models the paper's 49-benchmark evaluation suite
// (Embench, GAPBS, NAS, SPEC CPU 2017) plus the Redis/memcached drivers.
//
// Each benchmark is an IR program that preserves the two properties the
// Alaska overhead depends on (§5.4): how much real work the program does
// per memory access whose address derives from a heap object, and whether
// the base pointer of those accesses is loop-invariant (hoistable) or
// data-dependent (pointer chasing, global reloads, virtual dispatch).
// The archetype builders below capture the recurring structures the paper
// discusses — dense grids hoisted to the outermost loop (lbm, NAS),
// pointer sorting (mcf), linked traversal (sglib, xalancbmk), bases
// reloaded from globals (the Embench pattern that blocks hoisting) — and
// the benchmark table instantiates one per paper benchmark.
package workloads

import "alaska/internal/ir"

// BuildGrid models dense-array kernels (619.lbm, NAS): one large
// allocation walked by nested counted loops, with flops ALU operations per
// element. The base is defined outside all loops, so Alaska hoists its
// translation to the outermost preheader and the per-iteration cost is
// zero.
func BuildGrid(n, reps, flops int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	nC := b.Const(n)
	repsC := b.Const(reps)
	base := b.Alloc(b.Const(n * 8))

	outer := b.Loop("rep", zero, repsC, one)
	inner := b.Loop("i", zero, nC, one)
	off := b.Mul(inner.IndVar, eight)
	addr := b.GEP(base, off)
	v := b.Load(addr, ir.Int)
	acc := v
	for k := int64(0); k < flops; k++ {
		acc = b.Bin(ir.BinXor, b.Add(acc, inner.IndVar), outer.IndVar)
	}
	b.Store(addr, acc)
	b.Close(inner)
	b.Close(outer)
	res := b.Load(b.GEP(base, zero), ir.Int)
	b.Free(base)
	b.Ret(res)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// BuildCompute models register-bound kernels (crc32, aha-mont64, md5sum,
// nettle-*): a long ALU loop touching a small table every memEvery
// iterations. Heap traffic is negligible, so handle overhead is ~0.
func BuildCompute(iters, memEvery, flops int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	itersC := b.Const(iters)
	table := b.Alloc(b.Const(256 * 8))
	memEveryC := b.Const(memEvery)

	loop := b.Loop("i", zero, itersC, one)
	acc := loop.IndVar
	for k := int64(0); k < flops; k++ {
		acc = b.Bin(ir.BinXor, b.Mul(acc, b.Const(2654435761)), b.Const(k+1))
	}
	// if i % memEvery == 0 { table[acc & 255] ^= acc }
	rem := b.Bin(ir.BinRem, loop.IndVar, memEveryC)
	isHit := b.Cmp(ir.CmpEQ, rem, zero)
	hit := b.NewBlock("hit")
	cont := b.NewBlock("cont")
	b.CondBr(isHit, hit, cont)
	b.SetBlock(hit)
	idx := b.Bin(ir.BinAnd, acc, b.Const(255))
	addr := b.GEP(table, b.Mul(idx, eight))
	old := b.Load(addr, ir.Int)
	b.Store(addr, b.Bin(ir.BinXor, old, acc))
	b.Br(cont)
	b.SetBlock(cont)
	b.Close(loop)
	b.Free(table)
	b.Ret(nil)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// BuildListTraversal models pointer-chasing containers (sglib, huffbench,
// linked structures in SPEC): build a list of nodes [next, value], then
// walk it `passes` times doing `work` ALU ops per node. Every hop loads a
// fresh pointer, so every hop pays a translation that cannot be hoisted.
func BuildListTraversal(nodes, passes, work int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	n16 := b.Const(16)
	nodesC := b.Const(nodes)
	passesC := b.Const(passes)

	headCell := b.Alloc(eight)
	b.Store(headCell, zero)
	build := b.Loop("build", zero, nodesC, one)
	node := b.Alloc(n16)
	oldHead := b.Load(headCell, ir.Ptr)
	b.Store(node, oldHead)
	b.Store(b.GEP(node, eight), build.IndVar)
	b.Store(headCell, node)
	b.Close(build)

	accCell := b.Alloc(eight)
	b.Store(accCell, zero)
	pass := b.Loop("pass", zero, passesC, one)
	head := b.Load(headCell, ir.Ptr)
	walkH := b.NewBlock("walk.h")
	walkB := b.NewBlock("walk.b")
	walkX := b.NewBlock("walk.x")
	b.Br(walkH)
	b.SetBlock(walkH)
	cur := b.Phi(ir.Ptr, head, nil)
	alive := b.Cmp(ir.CmpNE, cur, zero)
	b.CondBr(alive, walkB, walkX)
	b.SetBlock(walkB)
	v := b.Load(b.GEP(cur, eight), ir.Int)
	acc := v
	for k := int64(0); k < work; k++ {
		acc = b.Add(b.Bin(ir.BinXor, acc, pass.IndVar), one)
	}
	a0 := b.Load(accCell, ir.Int)
	b.Store(accCell, b.Add(a0, acc))
	next := b.Load(cur, ir.Ptr)
	b.Br(walkH)
	cur.Args[1] = next
	b.SetBlock(walkX)
	b.Close(pass)
	res := b.Load(accCell, ir.Int)
	b.Ret(res)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// BuildPointerSort models 429/605.mcf's hot phase: an array of pointers
// repeatedly bubble-passed with the comparator dereferencing both sides —
// the paper counts 4 translations per comparison. `work` adds ALU ops per
// comparison to set the translation-to-work ratio.
func BuildPointerSort(n, passes, work int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	nC := b.Const(n)
	nM1 := b.Const(n - 1)
	passesC := b.Const(passes)

	arr := b.Alloc(b.Const(n * 8))
	init := b.Loop("init", zero, nC, one)
	obj := b.Alloc(eight)
	// Pseudo-random keys: (i * 2654435761) mod n.
	key := b.Bin(ir.BinRem, b.Mul(init.IndVar, b.Const(2654435761)), nC)
	b.Store(obj, key)
	b.Store(b.GEP(arr, b.Mul(init.IndVar, eight)), obj)
	b.Close(init)

	pass := b.Loop("pass", zero, passesC, one)
	i := b.Loop("i", zero, nM1, one)
	offI := b.Mul(i.IndVar, eight)
	slotA := b.GEP(arr, offI)
	slotB := b.GEP(arr, b.Add(offI, eight))
	pa := b.Load(slotA, ir.Ptr)
	pb := b.Load(slotB, ir.Ptr)
	va := b.Load(pa, ir.Int)
	vb := b.Load(pb, ir.Int)
	acc := b.Add(va, vb)
	for k := int64(0); k < work; k++ {
		acc = b.Bin(ir.BinXor, acc, pass.IndVar)
	}
	outOfOrder := b.Cmp(ir.CmpLT, vb, va)
	swap := b.NewBlock("swap")
	cont := b.NewBlock("cont")
	b.CondBr(outOfOrder, swap, cont)
	b.SetBlock(swap)
	b.Store(slotA, pb)
	b.Store(slotB, pa)
	b.Br(cont)
	b.SetBlock(cont)
	b.Close(i)
	b.Close(pass)
	b.Free(arr)
	b.Ret(nil)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// BuildGlobalChase models the Embench pattern the paper calls out (§5.4):
// the kernel's base pointer lives in a global and is reloaded on every
// iteration, so the translation cannot be hoisted across the reload.
func BuildGlobalChase(iters, work int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	itersC := b.Const(iters)

	global := b.Alloc(eight) // the global cell holding the buffer pointer
	buf := b.Alloc(b.Const(64 * 8))
	b.Store(global, buf)

	loop := b.Loop("i", zero, itersC, one)
	base := b.Load(global, ir.Ptr) // reload per iteration: a fresh root
	idx := b.Bin(ir.BinAnd, loop.IndVar, b.Const(63))
	addr := b.GEP(base, b.Mul(idx, eight))
	v := b.Load(addr, ir.Int)
	acc := v
	for k := int64(0); k < work; k++ {
		acc = b.Add(b.Bin(ir.BinXor, acc, loop.IndVar), one)
	}
	b.Store(addr, acc)
	b.Close(loop)
	b.Ret(nil)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// BuildCSR models the GAPBS kernels: CSR offset/edge/value arrays walked
// with a per-node neighbour loop. The CSR array bases hoist to the outer
// loops, but each node visit also touches a heap-allocated per-node
// property object through a loaded pointer (GAPBS's score/label/parent
// structures), whose translation cannot be hoisted — leaving the modest
// residual overhead of Figure 7's 4-16% band. edgeWork tunes ALU work per
// edge.
func BuildCSR(nodes, degree, iters, edgeWork int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	nodesC := b.Const(nodes)
	itersC := b.Const(iters)
	edges := nodes * degree

	offs := b.Alloc(b.Const((nodes + 1) * 8))
	dsts := b.Alloc(b.Const(edges * 8))
	vals := b.Alloc(b.Const(nodes * 8))
	props := b.Alloc(b.Const(nodes * 8)) // per-node property object ptrs

	// Build offsets (i*degree) and edges (pseudo-random targets).
	initN := b.Loop("initn", zero, b.Const(nodes+1), one)
	b.Store(b.GEP(offs, b.Mul(initN.IndVar, eight)), b.Mul(initN.IndVar, b.Const(degree)))
	b.Close(initN)
	initE := b.Loop("inite", zero, b.Const(edges), one)
	tgt := b.Bin(ir.BinRem, b.Mul(initE.IndVar, b.Const(40503)), nodesC)
	b.Store(b.GEP(dsts, b.Mul(initE.IndVar, eight)), tgt)
	b.Close(initE)
	initV := b.Loop("initv", zero, nodesC, one)
	b.Store(b.GEP(vals, b.Mul(initV.IndVar, eight)), one)
	prop := b.Alloc(eight)
	b.Store(prop, zero)
	b.Store(b.GEP(props, b.Mul(initV.IndVar, eight)), prop)
	b.Close(initV)

	it := b.Loop("iter", zero, itersC, one)
	nd := b.Loop("node", zero, nodesC, one)
	lo := b.Load(b.GEP(offs, b.Mul(nd.IndVar, eight)), ir.Int)
	hi := b.Load(b.GEP(offs, b.Mul(b.Add(nd.IndVar, one), eight)), ir.Int)
	e := b.Loop("edge", lo, hi, one)
	dst := b.Load(b.GEP(dsts, b.Mul(e.IndVar, eight)), ir.Int)
	nv := b.Load(b.GEP(vals, b.Mul(dst, eight)), ir.Int)
	acc := nv
	for k := int64(0); k < edgeWork; k++ {
		acc = b.Bin(ir.BinXor, b.Add(acc, e.IndVar), one)
	}
	cur := b.Load(b.GEP(vals, b.Mul(nd.IndVar, eight)), ir.Int)
	b.Store(b.GEP(vals, b.Mul(nd.IndVar, eight)), b.Add(cur, acc))
	b.Close(e)
	// Update the node's property object through its pointer — a fresh
	// root on every visit.
	p := b.Load(b.GEP(props, b.Mul(nd.IndVar, eight)), ir.Ptr)
	pv := b.Load(p, ir.Int)
	b.Store(p, b.Add(pv, one))
	b.Close(nd)
	b.Close(it)
	res := b.Load(b.GEP(vals, zero), ir.Int)
	b.Ret(res)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// BuildVCall models xalancbmk's virtual-dispatch style (§5.4): a tight
// loop calling a small internal function with a pointer receiver. Calls
// block interprocedural hoisting, so the callee translates `this` on every
// invocation even when it is the same object. With memberChase the method
// additionally follows a member pointer (this->field->value), adding a
// second untranslatable root per call — xalancbmk's DOM-node style.
func BuildVCall(objs, calls, work int64, memberChase bool) *ir.Module {
	method := ir.NewFunc("method", 1)
	mb := ir.NewBuilder(method)
	this := mb.Param(0, ir.Ptr)
	if memberChase {
		member := mb.Load(this, ir.Ptr)
		v := mb.Load(member, ir.Int)
		acc := v
		for k := int64(0); k < work; k++ {
			acc = mb.Add(acc, mb.Const(k))
		}
		mb.Store(member, acc)
		mb.Ret(acc)
	} else {
		v := mb.Load(this, ir.Int)
		acc := v
		for k := int64(0); k < work; k++ {
			acc = mb.Add(acc, mb.Const(k))
		}
		mb.Store(this, acc)
		mb.Ret(acc)
	}
	method.Finish()

	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	objsC := b.Const(objs)
	callsC := b.Const(calls)

	arr := b.Alloc(b.Const(objs * 8))
	init := b.Loop("init", zero, objsC, one)
	o := b.Alloc(eight)
	if memberChase {
		m := b.Alloc(eight)
		b.Store(m, init.IndVar)
		b.Store(o, m)
	} else {
		b.Store(o, init.IndVar)
	}
	b.Store(b.GEP(arr, b.Mul(init.IndVar, eight)), o)
	b.Close(init)

	loop := b.Loop("call", zero, callsC, one)
	idx := b.Bin(ir.BinRem, loop.IndVar, objsC)
	obj := b.Load(b.GEP(arr, b.Mul(idx, eight)), ir.Ptr)
	b.Call("method", ir.Int, obj)
	b.Close(loop)
	b.Free(arr)
	b.Ret(nil)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f, method}}
}

// BuildAllocChurn models allocator-heavy phases (parsers, xz blocks):
// repeated allocate/use/free cycles with `work` per block plus an escaped
// external call every escEvery rounds.
func BuildAllocChurn(rounds, blockWords, work, escEvery int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	roundsC := b.Const(rounds)
	wordsC := b.Const(blockWords)

	loop := b.Loop("round", zero, roundsC, one)
	blk := b.Alloc(b.Const(blockWords * 8))
	wr := b.Loop("wr", zero, wordsC, one)
	a := b.GEP(blk, b.Mul(wr.IndVar, eight))
	acc := b.Add(wr.IndVar, loop.IndVar)
	for k := int64(0); k < work; k++ {
		acc = b.Bin(ir.BinXor, acc, b.Const(k+3))
	}
	b.Store(a, acc)
	b.Close(wr)
	// Occasionally escape the block to external code.
	if escEvery > 0 {
		rem := b.Bin(ir.BinRem, loop.IndVar, b.Const(escEvery))
		isEsc := b.Cmp(ir.CmpEQ, rem, zero)
		esc := b.NewBlock("esc")
		cont := b.NewBlock("cont")
		b.CondBr(isEsc, esc, cont)
		b.SetBlock(esc)
		b.Call("ext_sum", ir.Int, blk, b.Const(blockWords*8))
		b.Br(cont)
		b.SetBlock(cont)
	}
	b.Free(blk)
	b.Close(loop)
	b.Ret(nil)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}

// BuildTreeWalk models game-tree searches (deepsjeng, leela): a linked
// binary tree descended repeatedly along pseudo-random paths; each step
// loads a child pointer (a fresh root) and does `work` evaluation ops.
func BuildTreeWalk(depth, descents, work int64) *ir.Module {
	f := ir.NewFunc("main", 0)
	b := ir.NewBuilder(f)
	zero := b.Const(0)
	one := b.Const(1)
	eight := b.Const(8)
	n24 := b.Const(24)
	sixteen := b.Const(16)

	// Build a complete tree level by level into an array of node ptrs:
	// node = [left, right, value]. levels array sized 2^depth.
	total := int64(1)<<depth - 1
	arr := b.Alloc(b.Const(total * 8))
	mk := b.Loop("mk", zero, b.Const(total), one)
	node := b.Alloc(n24)
	b.Store(b.GEP(node, sixteen), mk.IndVar) // value
	b.Store(node, zero)                      // left
	b.Store(b.GEP(node, eight), zero)        // right
	b.Store(b.GEP(arr, b.Mul(mk.IndVar, eight)), node)
	b.Close(mk)
	// Wire children: node i -> 2i+1, 2i+2.
	wire := b.Loop("wire", zero, b.Const((total-1)/2), one)
	parent := b.Load(b.GEP(arr, b.Mul(wire.IndVar, eight)), ir.Ptr)
	li := b.Add(b.Mul(wire.IndVar, b.Const(2)), one)
	ri := b.Add(li, one)
	lc := b.Load(b.GEP(arr, b.Mul(li, eight)), ir.Ptr)
	rc := b.Load(b.GEP(arr, b.Mul(ri, eight)), ir.Ptr)
	b.Store(parent, lc)
	b.Store(b.GEP(parent, eight), rc)
	b.Close(wire)

	root := b.Load(b.GEP(arr, zero), ir.Ptr)
	accCell := b.Alloc(eight)
	b.Store(accCell, zero)
	dsc := b.Loop("descent", zero, b.Const(descents), one)

	walkH := b.NewBlock("wh")
	walkB := b.NewBlock("wb")
	walkX := b.NewBlock("wx")
	b.Br(walkH)
	b.SetBlock(walkH)
	cur := b.Phi(ir.Ptr, root, nil)
	stepPhi := b.Phi(ir.Int, dsc.IndVar, nil)
	alive := b.Cmp(ir.CmpNE, cur, zero)
	b.CondBr(alive, walkB, walkX)
	b.SetBlock(walkB)
	v := b.Load(b.GEP(cur, sixteen), ir.Int)
	acc := v
	for k := int64(0); k < work; k++ {
		acc = b.Bin(ir.BinXor, b.Mul(acc, b.Const(31)), stepPhi)
	}
	a0 := b.Load(accCell, ir.Int)
	b.Store(accCell, b.Add(a0, acc))
	dir := b.Bin(ir.BinAnd, stepPhi, one)
	isL := b.Cmp(ir.CmpEQ, dir, zero)
	goL := b.NewBlock("goL")
	goR := b.NewBlock("goR")
	merge := b.NewBlock("merge")
	b.CondBr(isL, goL, goR)
	b.SetBlock(goL)
	lnext := b.Load(cur, ir.Ptr)
	b.Br(merge)
	b.SetBlock(goR)
	rnext := b.Load(b.GEP(cur, eight), ir.Ptr)
	b.Br(merge)
	b.SetBlock(merge)
	nxt := b.Phi(ir.Ptr, lnext, rnext)
	nstep := b.Bin(ir.BinShr, stepPhi, one)
	b.Br(walkH)
	cur.Args[1] = nxt
	stepPhi.Args[1] = nstep
	b.SetBlock(walkX)
	b.Close(dsc)
	res := b.Load(accCell, ir.Int)
	b.Ret(res)
	f.Finish()
	return &ir.Module{Funcs: []*ir.Func{f}}
}
