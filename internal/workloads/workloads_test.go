package workloads

import (
	"testing"

	"alaska/internal/compiler"
	"alaska/internal/ir"
	"alaska/internal/vm"
)

// Every benchmark model must verify, transform cleanly under all compiler
// configurations, and produce identical results in baseline and Alaska
// modes.
func TestAllBenchmarksSemanticsPreserved(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			base := b.Build()
			if err := base.Verify(); err != nil {
				t.Fatalf("verify: %v", err)
			}
			mb := vm.NewBaseline(base, vm.DefaultCosts)
			baseV, err := mb.Run("main")
			if err != nil {
				t.Fatalf("baseline run: %v", err)
			}

			mod := b.Build()
			opt := compiler.DefaultOptions
			if b.StrictAliasingViolation {
				opt.Hoisting = false
			}
			if _, err := compiler.Transform(mod, opt); err != nil {
				t.Fatalf("transform: %v", err)
			}
			ma, err := vm.NewAlaska(mod, vm.DefaultCosts)
			if err != nil {
				t.Fatal(err)
			}
			alaskaV, err := ma.Run("main")
			if err != nil {
				t.Fatalf("alaska run: %v", err)
			}
			if baseV != alaskaV {
				t.Errorf("results differ: baseline %d, alaska %d", baseV, alaskaV)
			}
			if ma.Cycles < mb.Cycles {
				// Translations can never make a program cheaper in this
				// cost model (the paper's ep speedup was icache layout
				// luck, which a cycle counter has no analogue for).
				t.Errorf("alaska cycles %d < baseline %d", ma.Cycles, mb.Cycles)
			}
			if err := ma.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllBenchmarksNoHoistingStillCorrect(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			base := b.Build()
			mb := vm.NewBaseline(base, vm.DefaultCosts)
			baseV, err := mb.Run("main")
			if err != nil {
				t.Fatal(err)
			}
			mod := b.Build()
			if _, err := compiler.Transform(mod, compiler.Options{Hoisting: false, Tracking: true}); err != nil {
				t.Fatalf("transform: %v", err)
			}
			ma, err := vm.NewAlaska(mod, vm.DefaultCosts)
			if err != nil {
				t.Fatal(err)
			}
			v, err := ma.Run("main")
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if v != baseV {
				t.Errorf("nohoisting result %d != baseline %d", v, baseV)
			}
		})
	}
}

// Every benchmark under every compiler configuration must satisfy the
// output invariant: all memory accesses flow through translations, all
// translations have pin slots under tracking, and no handle escapes to
// external code raw.
func TestAllBenchmarksVerifyTranslated(t *testing.T) {
	configs := []compiler.Options{
		{Hoisting: true, Tracking: true},
		{Hoisting: false, Tracking: true},
		{Hoisting: true, Tracking: false},
	}
	for _, b := range All() {
		for _, opt := range configs {
			mod := b.Build()
			if _, err := compiler.Transform(mod, opt); err != nil {
				t.Fatalf("%s %+v: transform: %v", b.Name, opt, err)
			}
			if err := compiler.VerifyTranslated(mod, opt); err != nil {
				t.Errorf("%s %+v: %v", b.Name, opt, err)
			}
		}
	}
}

func TestSuiteComposition(t *testing.T) {
	counts := map[string]int{}
	names := map[string]bool{}
	for _, b := range All() {
		counts[b.Suite]++
		if names[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		names[b.Name] = true
	}
	want := map[string]int{SuiteEmbench: 22, SuiteGAP: 8, SuiteNAS: 8, SuiteSPEC: 11}
	for suite, n := range want {
		if counts[suite] != n {
			t.Errorf("%s has %d benchmarks, want %d", suite, counts[suite], n)
		}
	}
	// Only perlbench and gcc violate strict aliasing.
	for _, b := range All() {
		want := b.Name == "perlbench" || b.Name == "gcc"
		if b.StrictAliasingViolation != want {
			t.Errorf("%s: StrictAliasingViolation = %v", b.Name, b.StrictAliasingViolation)
		}
	}
}

func TestLookup(t *testing.T) {
	if b := Lookup("mcf"); b == nil || b.Suite != SuiteSPEC {
		t.Errorf("Lookup(mcf) = %+v", b)
	}
	if Lookup("nope") != nil {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestSPECSubset(t *testing.T) {
	sub := SPECSubset()
	if len(sub) != 9 {
		t.Fatalf("subset = %d, want 9 (SPEC minus perlbench/gcc)", len(sub))
	}
	for _, b := range sub {
		if b.StrictAliasingViolation {
			t.Errorf("%s should be excluded from the ablation subset", b.Name)
		}
	}
}

// Archetype sanity: each builder produces a verified module with the
// structural property it claims.
func TestGridIsFullyHoistable(t *testing.T) {
	m := BuildGrid(64, 4, 2)
	st, err := compiler.Transform(m, compiler.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hoisted == 0 {
		t.Error("grid produced no hoisted translations")
	}
	if st.Translates > st.Hoisted+1 {
		t.Errorf("grid has %d translations but only %d hoisted", st.Translates, st.Hoisted)
	}
}

func TestListTraversalIsUnhoistable(t *testing.T) {
	m := BuildListTraversal(16, 2, 1)
	st, err := compiler.Transform(m, compiler.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.Hoisted != 0 {
		t.Errorf("list traversal hoisted %d translations; pointer chasing must not hoist", st.Hoisted)
	}
}

func TestGlobalChaseIsUnhoistable(t *testing.T) {
	m := BuildGlobalChase(16, 1)
	st, err := compiler.Transform(m, compiler.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	// The buffer access root is reloaded per iteration: at most the
	// global-cell translation itself may hoist.
	if st.Hoisted > 1 {
		t.Errorf("global chase hoisted %d translations", st.Hoisted)
	}
}

func TestAllocChurnEscapes(t *testing.T) {
	m := BuildAllocChurn(4, 4, 1, 2)
	st, err := compiler.Transform(m, compiler.DefaultOptions)
	if err != nil {
		t.Fatal(err)
	}
	if st.EscapesPinned == 0 {
		t.Error("alloc churn with escEvery produced no escape pins")
	}
}

func TestTreeWalkComputesDeterministically(t *testing.T) {
	run := func() uint64 {
		m := BuildTreeWalk(6, 10, 2)
		mb := vm.NewBaseline(m, vm.DefaultCosts)
		v, err := mb.Run("main")
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if run() != run() {
		t.Error("tree walk nondeterministic")
	}
}

func TestVCallTranslatesInCallee(t *testing.T) {
	m := BuildVCall(4, 8, 1, true)
	if _, err := compiler.Transform(m, compiler.DefaultOptions); err != nil {
		t.Fatal(err)
	}
	method := m.Lookup("method")
	if method == nil {
		t.Fatal("no method function")
	}
	found := false
	for _, blk := range method.Blocks {
		for _, i := range blk.Instrs {
			if i.Op == ir.OpTranslate {
				found = true
			}
		}
	}
	if !found {
		t.Error("callee does not translate its receiver")
	}
}
