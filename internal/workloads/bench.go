package workloads

import "alaska/internal/ir"

// Benchmark describes one modelled benchmark from the paper's Figure 7
// x-axis.
type Benchmark struct {
	Name  string
	Suite string
	// Build returns a fresh module (built twice: once for the baseline,
	// once for the Alaska transformation).
	Build func() *ir.Module
	// StrictAliasingViolation marks perlbench and gcc, which must be
	// compiled with hoisting disabled (-fno-strict-aliasing, §5.2).
	StrictAliasingViolation bool
	// PollCost models the residual LLVM StackMaps backend cost the paper
	// observes on some benchmarks (nab, xz — §5.4); zero for most.
	PollCost int64
	// PaperOverhead is the paper's measured Figure 7 overhead (%), kept
	// for the EXPERIMENTS.md comparison.
	PaperOverhead float64
}

// Suites in Figure 7 order.
const (
	SuiteEmbench = "Embench"
	SuiteGAP     = "GAP"
	SuiteNAS     = "NAS"
	SuiteSPEC    = "SPEC2017"
)

// All returns the 49 modelled benchmarks in the paper's Figure 7 order.
func All() []Benchmark {
	return []Benchmark{
		// ----- Embench (22): small embedded kernels.
		{Name: "aha-mont64", Suite: SuiteEmbench, PaperOverhead: 0,
			Build: func() *ir.Module { return BuildCompute(30000, 64, 6) }},
		{Name: "crc32", Suite: SuiteEmbench, PaperOverhead: 0,
			Build: func() *ir.Module { return BuildCompute(30000, 4, 4) }},
		{Name: "cubic", Suite: SuiteEmbench, PaperOverhead: 6,
			Build: func() *ir.Module { return BuildGlobalChase(8000, 66) }},
		{Name: "edn", Suite: SuiteEmbench, PaperOverhead: 0,
			Build: func() *ir.Module { return BuildGrid(512, 60, 4) }},
		{Name: "huffbench", Suite: SuiteEmbench, PaperOverhead: 15,
			Build: func() *ir.Module { return BuildListTraversal(256, 120, 20) }},
		{Name: "matmult-int", Suite: SuiteEmbench, PaperOverhead: 9,
			Build: func() *ir.Module { return BuildGrid(512, 60, 2) }, PollCost: 1},
		{Name: "md5sum", Suite: SuiteEmbench, PaperOverhead: -1,
			Build: func() *ir.Module { return BuildCompute(30000, 16, 8) }},
		{Name: "minver", Suite: SuiteEmbench, PaperOverhead: -3,
			Build: func() *ir.Module { return BuildGrid(256, 120, 6) }},
		{Name: "nbody", Suite: SuiteEmbench, PaperOverhead: 11,
			Build: func() *ir.Module { return BuildGlobalChase(10000, 32) }},
		{Name: "nettle-aes", Suite: SuiteEmbench, PaperOverhead: -1,
			Build: func() *ir.Module { return BuildCompute(30000, 8, 10) }},
		{Name: "nettle-sha256", Suite: SuiteEmbench, PaperOverhead: 1,
			Build: func() *ir.Module { return BuildCompute(30000, 12, 9) }},
		{Name: "nsichneu", Suite: SuiteEmbench, PaperOverhead: 0,
			Build: func() *ir.Module { return BuildCompute(25000, 32, 12) }},
		{Name: "picojpeg", Suite: SuiteEmbench, PaperOverhead: 7,
			Build: func() *ir.Module { return BuildGlobalChase(10000, 56) }},
		{Name: "primecount", Suite: SuiteEmbench, PaperOverhead: 0,
			Build: func() *ir.Module { return BuildCompute(30000, 48, 7) }},
		{Name: "qrduino", Suite: SuiteEmbench, PaperOverhead: 30,
			Build: func() *ir.Module { return BuildGlobalChase(15000, 6) }},
		{Name: "sglib", Suite: SuiteEmbench, PaperOverhead: 23,
			Build: func() *ir.Module { return BuildListTraversal(256, 150, 9) }},
		{Name: "slre", Suite: SuiteEmbench, PaperOverhead: 43,
			Build: func() *ir.Module { return BuildGlobalChase(15000, 1) }},
		{Name: "st", Suite: SuiteEmbench, PaperOverhead: -2,
			Build: func() *ir.Module { return BuildGrid(512, 60, 5) }},
		{Name: "statemate", Suite: SuiteEmbench, PaperOverhead: 9,
			Build: func() *ir.Module { return BuildGlobalChase(10000, 41) }},
		{Name: "tarfind", Suite: SuiteEmbench, PaperOverhead: 7,
			Build: func() *ir.Module { return BuildAllocChurn(1200, 12, 2, 6) }},
		{Name: "ud", Suite: SuiteEmbench, PaperOverhead: 1,
			Build: func() *ir.Module { return BuildGrid(256, 120, 4) }},
		{Name: "wikisort", Suite: SuiteEmbench, PaperOverhead: 16,
			Build: func() *ir.Module { return BuildPointerSort(400, 50, 80) }},

		// ----- GAPBS (8): graph kernels over CSR.
		{Name: "bc", Suite: SuiteGAP, PaperOverhead: 4,
			Build: func() *ir.Module { return BuildCSR(800, 8, 8, 0) }},
		{Name: "bfs", Suite: SuiteGAP, PaperOverhead: 5,
			Build: func() *ir.Module { return BuildCSR(1000, 6, 9, 0) }},
		{Name: "cc", Suite: SuiteGAP, PaperOverhead: 6,
			Build: func() *ir.Module { return BuildCSR(1000, 4, 8, 3) }},
		{Name: "cc_sv", Suite: SuiteGAP, PaperOverhead: 15,
			Build: func() *ir.Module { return BuildCSR(600, 1, 18, 7) }},
		{Name: "pr", Suite: SuiteGAP, PaperOverhead: 10,
			Build: func() *ir.Module { return BuildCSR(800, 2, 12, 4) }},
		{Name: "pr_spmv", Suite: SuiteGAP, PaperOverhead: 9,
			Build: func() *ir.Module { return BuildCSR(800, 2, 10, 6) }},
		{Name: "sssp", Suite: SuiteGAP, PaperOverhead: 4,
			Build: func() *ir.Module { return BuildCSR(1000, 8, 8, 0) }},
		{Name: "tc", Suite: SuiteGAP, PaperOverhead: 16,
			Build: func() *ir.Module { return BuildCSR(600, 1, 20, 5) }},

		// ----- NAS (8): dense scientific kernels; translations hoist to
		// the outermost loops and the overhead all but vanishes (§5.4).
		{Name: "bt", Suite: SuiteNAS, PaperOverhead: 0,
			Build: func() *ir.Module { return BuildGrid(1024, 40, 8) }},
		{Name: "cg", Suite: SuiteNAS, PaperOverhead: -3,
			Build: func() *ir.Module { return BuildGrid(1024, 40, 6) }},
		{Name: "ep", Suite: SuiteNAS, PaperOverhead: -11,
			Build: func() *ir.Module { return BuildCompute(40000, 256, 9) }},
		{Name: "ft", Suite: SuiteNAS, PaperOverhead: -1,
			Build: func() *ir.Module { return BuildGrid(2048, 20, 7) }},
		{Name: "is", Suite: SuiteNAS, PaperOverhead: 0,
			Build: func() *ir.Module { return BuildGrid(2048, 20, 3) }},
		{Name: "lu", Suite: SuiteNAS, PaperOverhead: -4,
			Build: func() *ir.Module { return BuildGrid(1024, 40, 9) }},
		{Name: "mg", Suite: SuiteNAS, PaperOverhead: 7,
			Build: func() *ir.Module { return BuildGrid(1024, 40, 2) }, PollCost: 1},
		{Name: "sp", Suite: SuiteNAS, PaperOverhead: 0,
			Build: func() *ir.Module { return BuildGrid(1024, 40, 8) }},

		// ----- SPEC CPU 2017 (11).
		{Name: "perlbench", Suite: SuiteSPEC, PaperOverhead: 73,
			StrictAliasingViolation: true,
			Build:                   func() *ir.Module { return BuildGlobalChase(15000, 10) }},
		{Name: "gcc", Suite: SuiteSPEC, PaperOverhead: 51,
			StrictAliasingViolation: true,
			Build:                   func() *ir.Module { return BuildGlobalChase(15000, 18) }},
		{Name: "mcf", Suite: SuiteSPEC, PaperOverhead: 20,
			Build: func() *ir.Module { return BuildPointerSort(500, 60, 65) }},
		{Name: "lbm", Suite: SuiteSPEC, PaperOverhead: 3,
			Build: func() *ir.Module { return BuildGrid(4096, 12, 6) }},
		{Name: "xalancbmk", Suite: SuiteSPEC, PaperOverhead: 47,
			Build: func() *ir.Module { return BuildVCall(64, 12000, 0, true) }},
		{Name: "x264", Suite: SuiteSPEC, PaperOverhead: 13,
			Build: func() *ir.Module { return BuildAllocChurn(1500, 16, 1, 0) }, PollCost: 1},
		{Name: "deepsjeng", Suite: SuiteSPEC, PaperOverhead: 12,
			Build: func() *ir.Module { return BuildTreeWalk(12, 2500, 16) }},
		{Name: "imagick", Suite: SuiteSPEC, PaperOverhead: 24,
			Build: func() *ir.Module { return BuildVCall(128, 10000, 17, true) }},
		{Name: "leela", Suite: SuiteSPEC, PaperOverhead: 27,
			Build: func() *ir.Module { return BuildTreeWalk(13, 2500, 3) }},
		{Name: "nab", Suite: SuiteSPEC, PaperOverhead: 42,
			Build: func() *ir.Module { return BuildGrid(1024, 60, 1) }, PollCost: 7},
		{Name: "xz", Suite: SuiteSPEC, PaperOverhead: 7,
			Build: func() *ir.Module { return BuildAllocChurn(1200, 48, 1, 8) }, PollCost: 1},
	}
}

// Lookup returns the benchmark with the given name, or nil.
func Lookup(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			bc := b
			return &bc
		}
	}
	return nil
}

// SPECSubset returns the Figure 8 ablation set (the SPEC benchmarks from
// mcf through xz).
func SPECSubset() []Benchmark {
	var out []Benchmark
	for _, b := range All() {
		if b.Suite != SuiteSPEC || b.StrictAliasingViolation {
			continue
		}
		out = append(out, b)
	}
	return out
}
