// Package stats provides the small statistical and reporting toolkit the
// experiment harnesses share: geometric means, percentiles, time series,
// and CSV/table rendering.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"
)

// Geomean returns the geometric mean of (1 + x) - 1 over the inputs, the
// convention used for aggregating overhead percentages (a -3% entry is a
// 0.97 factor). Inputs are fractions (0.10 = 10%).
func Geomean(overheads []float64) float64 {
	if len(overheads) == 0 {
		return 0
	}
	var logSum float64
	for _, o := range overheads {
		f := 1 + o
		if f <= 0 {
			f = 1e-9
		}
		logSum += math.Log(f)
	}
	return math.Exp(logSum/float64(len(overheads))) - 1
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Stddev returns the sample standard deviation.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += (x - m) * (x - m)
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) by nearest-rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Point is one sample of a time series.
type Point struct {
	T time.Duration
	V float64
}

// Series is a named time series (e.g. one curve of Figure 9).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample.
func (s *Series) Add(t time.Duration, v float64) {
	s.Points = append(s.Points, Point{t, v})
}

// Max returns the series' maximum value (0 for empty).
func (s *Series) Max() float64 {
	var m float64
	for _, p := range s.Points {
		if p.V > m {
			m = p.V
		}
	}
	return m
}

// Last returns the final value (0 for empty).
func (s *Series) Last() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	return s.Points[len(s.Points)-1].V
}

// At returns the value at or immediately before t (0 if before all data).
func (s *Series) At(t time.Duration) float64 {
	var v float64
	for _, p := range s.Points {
		if p.T > t {
			break
		}
		v = p.V
	}
	return v
}

// WriteCSV writes aligned series as CSV with a time column in seconds.
// Series are sampled at each distinct timestamp using At().
func WriteCSV(w io.Writer, series []*Series) error {
	tsSet := map[time.Duration]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			tsSet[p.T] = true
		}
	}
	ts := make([]time.Duration, 0, len(tsSet))
	for t := range tsSet {
		ts = append(ts, t)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	header := []string{"time_s"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	for _, t := range ts {
		row := []string{fmt.Sprintf("%.3f", t.Seconds())}
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.3f", s.At(t)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Table renders rows as an aligned text table.
func Table(w io.Writer, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(line(header)))); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintln(w, line(r)); err != nil {
			return err
		}
	}
	return nil
}

// Histogram is a fixed-boundary latency histogram.
type Histogram struct {
	bounds []float64 // upper bounds
	counts []int64
	sum    float64
	n      int64
	max    float64
}

// NewHistogram builds a histogram with the given ascending upper bounds;
// an overflow bucket is added automatically.
func NewHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Clone returns an independent copy of the histogram.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{bounds: h.bounds, sum: h.sum, n: h.n, max: h.max}
	c.counts = append([]int64(nil), h.counts...)
	return c
}

// Merge folds other's observations into h. The histograms must share the
// same bucket layout.
func (h *Histogram) Merge(other *Histogram) error {
	if len(other.bounds) != len(h.bounds) {
		return fmt.Errorf("stats: merge of histograms with %d and %d bounds",
			len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if other.bounds[i] != b {
			return fmt.Errorf("stats: merge of histograms with mismatched bound %d", i)
		}
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.sum += other.sum
	h.n += other.n
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// Mean returns the mean observation.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Quantile approximates the q-th quantile (0..1) from bucket boundaries.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(q * float64(h.n))
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum > target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}
