package stats

// Edge-case coverage for LatencyRecorder: empty and single-sample
// recorders, the overflow bucket, ForEachBucket's contract (the
// Prometheus renderer depends on it), Reset, and recording racing a
// snapshot under -race.

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyRecorderEmpty(t *testing.T) {
	r := NewLatencyRecorder()
	if r.Count() != 0 || r.Sum() != 0 || r.Mean() != 0 || r.Max() != 0 {
		t.Fatalf("empty recorder not all-zero: n=%d sum=%v mean=%v max=%v",
			r.Count(), r.Sum(), r.Mean(), r.Max())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := r.Percentile(p); got != 0 {
			t.Fatalf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
	total := int64(0)
	r.ForEachBucket(func(_, count int64) { total += count })
	if total != 0 {
		t.Fatalf("empty recorder has %d bucketed observations", total)
	}
}

func TestLatencyRecorderSingleSample(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(5 * time.Millisecond)
	if r.Count() != 1 || r.Sum() != 5*time.Millisecond || r.Max() != 5*time.Millisecond {
		t.Fatalf("single sample: n=%d sum=%v max=%v", r.Count(), r.Sum(), r.Max())
	}
	// Every percentile of one sample lands in its bucket: within one
	// geometric step (25%) of the observation.
	for _, p := range []float64{0, 50, 99.9} {
		got := r.Percentile(p)
		if got < 4*time.Millisecond || got > 7*time.Millisecond {
			t.Fatalf("Percentile(%v) = %v, want ~5ms", p, got)
		}
	}
}

func TestLatencyRecorderOverflowBucket(t *testing.T) {
	r := NewLatencyRecorder()
	huge := 42 * time.Second // past the ~10s largest bound
	r.Record(huge)
	r.Record(time.Microsecond)
	if r.Max() != huge {
		t.Fatalf("Max = %v, want %v", r.Max(), huge)
	}
	// The tail percentile of an overflow observation reports the true
	// max, not a bucket bound.
	if got := r.Percentile(99.9); got != huge {
		t.Fatalf("Percentile(99.9) = %v, want %v (the overflow max)", got, huge)
	}
	// ForEachBucket reports the overflow count under OverflowBound, with
	// ascending bounds before it.
	var lastBound int64 = -1
	var overflowCount int64
	seenOverflow := false
	r.ForEachBucket(func(bound, count int64) {
		if seenOverflow {
			t.Fatal("buckets after the overflow bucket")
		}
		if bound == OverflowBound {
			seenOverflow = true
			overflowCount = count
			return
		}
		if bound <= lastBound {
			t.Fatalf("bucket bounds not ascending: %d after %d", bound, lastBound)
		}
		lastBound = bound
	})
	if !seenOverflow || overflowCount != 1 {
		t.Fatalf("overflow bucket count = %d (seen=%v), want 1", overflowCount, seenOverflow)
	}
}

func TestLatencyRecorderReset(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 0; i < 100; i++ {
		r.Record(time.Duration(i+1) * time.Millisecond)
	}
	r.Record(time.Minute)
	r.Reset()
	if r.Count() != 0 || r.Sum() != 0 || r.Max() != 0 || r.Percentile(99) != 0 {
		t.Fatalf("post-reset: n=%d sum=%v max=%v p99=%v, want zeros",
			r.Count(), r.Sum(), r.Max(), r.Percentile(99))
	}
	total := int64(0)
	r.ForEachBucket(func(_, count int64) { total += count })
	if total != 0 {
		t.Fatalf("post-reset buckets hold %d observations", total)
	}
	// The recorder stays usable after a reset.
	r.Record(2 * time.Millisecond)
	if r.Count() != 1 || r.Max() != 2*time.Millisecond {
		t.Fatalf("recorder unusable after reset: n=%d max=%v", r.Count(), r.Max())
	}
}

func TestLatencyRecorderMergeEdge(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(time.Millisecond)
	r.Merge(nil) // no-op
	r.Merge(r)   // self-merge must not double-count
	if r.Count() != 1 {
		t.Fatalf("after nil/self merges: n=%d, want 1", r.Count())
	}
	empty := NewLatencyRecorder()
	r.Merge(empty)
	if r.Count() != 1 || r.Max() != time.Millisecond {
		t.Fatalf("merge of empty changed the recorder: n=%d max=%v", r.Count(), r.Max())
	}
	empty.Merge(r)
	if empty.Count() != 1 || empty.Max() != time.Millisecond || empty.Sum() != time.Millisecond {
		t.Fatalf("merge into empty: n=%d max=%v sum=%v", empty.Count(), empty.Max(), empty.Sum())
	}
}

// TestLatencyRecorderSnapshotDuringRecord races ForEachBucket, Reset,
// and Percentile against concurrent Records — the relaxed-snapshot
// guarantee under -race.
func TestLatencyRecorderSnapshotDuringRecord(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Record(time.Duration(i%1000+1) * time.Microsecond)
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		var cum int64
		r.ForEachBucket(func(_, count int64) {
			if count < 0 {
				t.Errorf("negative bucket count %d", count)
			}
			cum += count
		})
		_ = r.Percentile(99)
		_ = r.Summary()
		if i%50 == 0 {
			r.Reset()
		}
	}
	close(stop)
	wg.Wait()
}
