package stats

import (
	"sync"
	"testing"
	"time"
)

func TestLatencyRecorderPercentiles(t *testing.T) {
	r := NewLatencyRecorder()
	// 1000 samples: 990 at ~1ms, 10 at ~100ms.
	for i := 0; i < 990; i++ {
		r.Record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		r.Record(100 * time.Millisecond)
	}
	if r.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", r.Count())
	}
	p50 := r.Percentile(50)
	if p50 < 500*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	p999 := r.Percentile(99.9)
	if p999 < 50*time.Millisecond {
		t.Errorf("p999 = %v, want >= 50ms", p999)
	}
	if max := r.Max(); max < 99*time.Millisecond {
		t.Errorf("max = %v, want ~100ms", max)
	}
	if mean := r.Mean(); mean < 1*time.Millisecond || mean > 5*time.Millisecond {
		t.Errorf("mean = %v, want ~2ms", mean)
	}
}

func TestLatencyRecorderMerge(t *testing.T) {
	a, b := NewLatencyRecorder(), NewLatencyRecorder()
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(10 * time.Millisecond)
	}
	m := NewLatencyRecorder()
	m.Merge(a)
	m.Merge(b)
	if m.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", m.Count())
	}
	// Sources must stay usable.
	if a.Count() != 100 || b.Count() != 100 {
		t.Errorf("merge mutated sources: %d, %d", a.Count(), b.Count())
	}
	if p99 := m.Percentile(99); p99 < 5*time.Millisecond {
		t.Errorf("merged p99 = %v, want >= 5ms", p99)
	}
	// Self-merge and nil-merge are no-ops.
	m.Merge(m)
	m.Merge(nil)
	if m.Count() != 200 {
		t.Errorf("self/nil merge changed count to %d", m.Count())
	}
}

func TestLatencyRecorderConcurrent(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(time.Microsecond * time.Duration(1+i%100))
				if i%100 == 0 {
					_ = r.Percentile(99)
				}
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", r.Count())
	}
}

func TestHistogramMergeMismatch(t *testing.T) {
	a := NewHistogram([]float64{1, 2, 3})
	b := NewHistogram([]float64{1, 2})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched layouts succeeded")
	}
	c := NewHistogram([]float64{1, 2, 4})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of mismatched bounds succeeded")
	}
}
