package stats

import (
	"fmt"
	"sync"
	"time"
)

// latencyBounds are the shared bucket boundaries of every LatencyRecorder,
// in microseconds: geometric from 1 µs to ~10 s. A shared layout is what
// makes recorders mergeable without resampling.
var latencyBounds = func() []float64 {
	var b []float64
	for us := 1.0; us < 10_000_000; us *= 1.25 {
		b = append(b, us)
	}
	return b
}()

// LatencyRecorder is the shared latency instrument of the benchmark
// harnesses, the alaskad stats surface, and the loadgen report: a
// fixed-layout histogram of operation durations with cheap recording,
// cross-recorder merging, and percentile queries.
//
// Methods are safe for concurrent use. The intended patterns are both
// "one recorder per worker, Merge at the end" (no contention on the hot
// path) and "one shared recorder sampled live" (the server's per-command
// recorder, read by concurrent stats commands).
type LatencyRecorder struct {
	mu sync.Mutex
	h  *Histogram
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{h: NewHistogram(latencyBounds)}
}

// Record adds one observation.
func (r *LatencyRecorder) Record(d time.Duration) {
	us := float64(d.Nanoseconds()) / 1e3
	r.mu.Lock()
	r.h.Observe(us)
	r.mu.Unlock()
}

// Merge folds other's observations into r. Both recorders stay usable.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	if other == nil || r == other {
		return
	}
	other.mu.Lock()
	snap := other.h.Clone()
	other.mu.Unlock()
	r.mu.Lock()
	// Same package-level bounds on both sides: Merge cannot fail.
	_ = r.h.Merge(snap)
	r.mu.Unlock()
}

// Count returns the number of observations.
func (r *LatencyRecorder) Count() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.h.Count()
}

// Mean returns the mean observed latency.
func (r *LatencyRecorder) Mean() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.h.Mean() * 1e3)
}

// Max returns the largest observed latency.
func (r *LatencyRecorder) Max() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.h.Max() * 1e3)
}

// Percentile returns the p-th percentile (0..100) as a duration. The
// resolution is the bucket width (25% geometric steps).
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.h.Quantile(p/100) * 1e3)
}

// Summary renders the standard one-line report: count, mean, and the
// p50/p99/p999 tail.
func (r *LatencyRecorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		r.Count(), r.Mean(), r.Percentile(50), r.Percentile(99),
		r.Percentile(99.9), r.Max())
}
