package stats

import (
	"fmt"
	"sync/atomic"
	"time"
)

// latencyBounds are the shared bucket boundaries of every LatencyRecorder,
// in microseconds: geometric from 1 µs to ~10 s. A shared layout is what
// makes recorders mergeable without resampling.
var latencyBounds = func() []float64 {
	var b []float64
	for us := 1.0; us < 10_000_000; us *= 1.25 {
		b = append(b, us)
	}
	return b
}()

// latencyBoundsNs mirrors latencyBounds in integer nanoseconds so the
// record path is a pure integer binary search — no float conversion, no
// allocation, no lock.
var latencyBoundsNs = func() []int64 {
	out := make([]int64, len(latencyBounds))
	for i, us := range latencyBounds {
		out[i] = int64(us * 1e3)
	}
	return out
}()

// LatencyRecorder is the shared latency instrument of the benchmark
// harnesses, the alaskad stats surface, and the loadgen report: a
// fixed-layout histogram of operation durations with cheap recording,
// cross-recorder merging, and percentile queries.
//
// Methods are safe for concurrent use, and Record is lock-free: one
// atomic increment per bucket plus the running sum/count/max, so a
// recorder shared by every connection of a busy server never serializes
// the hot path behind a mutex. Queries (Percentile, Mean, Merge) read
// the counters without stopping writers; a query racing a Record may see
// an observation in the count but not yet the sum (or vice versa), the
// usual relaxed-snapshot guarantee of stats surfaces.
type LatencyRecorder struct {
	counts []atomic.Int64 // len(latencyBounds)+1: last bucket is overflow
	n      atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{counts: make([]atomic.Int64, len(latencyBoundsNs)+1)}
}

// bucketFor returns the bucket index for an observation of ns
// nanoseconds: the first bound >= ns, or the overflow bucket.
func bucketFor(ns int64) int {
	lo, hi := 0, len(latencyBoundsNs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if latencyBoundsNs[mid] < ns {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Record adds one observation. Lock-free and allocation-free.
func (r *LatencyRecorder) Record(d time.Duration) {
	ns := d.Nanoseconds()
	r.counts[bucketFor(ns)].Add(1)
	r.n.Add(1)
	r.sumNs.Add(ns)
	for {
		cur := r.maxNs.Load()
		if ns <= cur || r.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Merge folds other's observations into r. Both recorders stay usable.
func (r *LatencyRecorder) Merge(other *LatencyRecorder) {
	if other == nil || r == other {
		return
	}
	for i := range other.counts {
		if c := other.counts[i].Load(); c != 0 {
			r.counts[i].Add(c)
		}
	}
	r.n.Add(other.n.Load())
	r.sumNs.Add(other.sumNs.Load())
	max := other.maxNs.Load()
	for {
		cur := r.maxNs.Load()
		if max <= cur || r.maxNs.CompareAndSwap(cur, max) {
			return
		}
	}
}

// Count returns the number of observations.
func (r *LatencyRecorder) Count() int64 { return r.n.Load() }

// Sum returns the total of all observed latencies.
func (r *LatencyRecorder) Sum() time.Duration {
	return time.Duration(r.sumNs.Load())
}

// OverflowBound is the bound ForEachBucket reports for the final
// overflow bucket (observations past the largest explicit bound).
const OverflowBound = int64(^uint64(0) >> 1)

// ForEachBucket calls fn once per bucket in ascending bound order with
// the bucket's upper bound in nanoseconds and its (non-cumulative)
// count; the final overflow bucket is reported with bound =
// OverflowBound. Like every query, it reads the counters without
// stopping writers — a relaxed snapshot. The Prometheus exposition
// renderer in internal/metrics is the main consumer.
func (r *LatencyRecorder) ForEachBucket(fn func(boundNs int64, count int64)) {
	for i := range r.counts {
		bound := OverflowBound
		if i < len(latencyBoundsNs) {
			bound = latencyBoundsNs[i]
		}
		fn(bound, r.counts[i].Load())
	}
}

// Reset zeroes the recorder (the `stats reset` surface). Records racing
// the reset may leave a few counts behind or a count/sum that disagree
// by an observation — the usual relaxed guarantee; the recorder stays
// internally usable either way.
func (r *LatencyRecorder) Reset() {
	for i := range r.counts {
		r.counts[i].Store(0)
	}
	r.n.Store(0)
	r.sumNs.Store(0)
	r.maxNs.Store(0)
}

// Mean returns the mean observed latency.
func (r *LatencyRecorder) Mean() time.Duration {
	n := r.n.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(r.sumNs.Load() / n)
}

// Max returns the largest observed latency.
func (r *LatencyRecorder) Max() time.Duration {
	return time.Duration(r.maxNs.Load())
}

// Percentile returns the p-th percentile (0..100) as a duration. The
// resolution is the bucket width (25% geometric steps).
func (r *LatencyRecorder) Percentile(p float64) time.Duration {
	n := r.n.Load()
	if n == 0 {
		return 0
	}
	target := int64(p / 100 * float64(n))
	var cum int64
	for i := range r.counts {
		cum += r.counts[i].Load()
		if cum > target {
			if i < len(latencyBoundsNs) {
				return time.Duration(latencyBoundsNs[i])
			}
			return time.Duration(r.maxNs.Load())
		}
	}
	return time.Duration(r.maxNs.Load())
}

// Summary renders the standard one-line report: count, mean, and the
// p50/p99/p999 tail.
func (r *LatencyRecorder) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p999=%v max=%v",
		r.Count(), r.Mean(), r.Percentile(50), r.Percentile(99),
		r.Percentile(99.9), r.Max())
}
