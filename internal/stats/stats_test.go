package stats

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestGeomean(t *testing.T) {
	if g := Geomean(nil); g != 0 {
		t.Errorf("Geomean(nil) = %v", g)
	}
	// Symmetric factors cancel: +100% and -50% give 0.
	if g := Geomean([]float64{1.0, -0.5}); !almost(g, 0) {
		t.Errorf("Geomean(+100%%, -50%%) = %v, want 0", g)
	}
	if g := Geomean([]float64{0.1, 0.1, 0.1}); !almost(g, 0.1) {
		t.Errorf("Geomean of identical = %v, want 0.1", g)
	}
	// Negative overheads are legal (speedups).
	if g := Geomean([]float64{-0.11}); !almost(g, -0.11) {
		t.Errorf("Geomean(-11%%) = %v", g)
	}
}

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5) {
		t.Errorf("Mean = %v", m)
	}
	if s := Stddev(xs); math.Abs(s-2.138089935) > 1e-6 {
		t.Errorf("Stddev = %v", s)
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("Stddev of singleton should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 50); p != 5 {
		t.Errorf("P50 = %v", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Errorf("P100 = %v", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %v", p)
	}
	if p := Percentile(nil, 50); p != 0 {
		t.Errorf("P50(nil) = %v", p)
	}
}

func TestPercentileIsMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = rng.Float64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 5 {
			v := Percentile(xs, p)
			if v < prev {
				return false
			}
			prev = v
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Percentile(xs, 0) == sorted[0] && Percentile(xs, 100) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "rss"}
	s.Add(0, 10)
	s.Add(time.Second, 20)
	s.Add(2*time.Second, 15)
	if s.Max() != 20 {
		t.Errorf("Max = %v", s.Max())
	}
	if s.Last() != 15 {
		t.Errorf("Last = %v", s.Last())
	}
	if v := s.At(1500 * time.Millisecond); v != 20 {
		t.Errorf("At(1.5s) = %v, want 20 (step interpolation)", v)
	}
	if v := s.At(-time.Second); v != 0 {
		t.Errorf("At before data = %v", v)
	}
	empty := &Series{}
	if empty.Max() != 0 || empty.Last() != 0 {
		t.Error("empty series should report zeros")
	}
}

func TestWriteCSV(t *testing.T) {
	a := &Series{Name: "a"}
	b := &Series{Name: "b"}
	a.Add(0, 1)
	a.Add(time.Second, 2)
	b.Add(500*time.Millisecond, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Series{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_s,a,b" {
		t.Errorf("header = %q", lines[0])
	}
	if len(lines) != 4 { // header + 3 distinct timestamps
		t.Errorf("lines = %d: %q", len(lines), buf.String())
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, []string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "a-much-longer-name") || !strings.Contains(out, "name") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want 4", len(lines))
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for i := 0; i < 90; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if m := h.Mean(); !almost(m, (90*0.5+10*50)/100) {
		t.Errorf("Mean = %v", m)
	}
	if h.Max() != 50 {
		t.Errorf("Max = %v", h.Max())
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("Q50 = %v, want bucket bound 1", q)
	}
	if q := h.Quantile(0.99); q != 100 {
		t.Errorf("Q99 = %v, want bucket bound 100", q)
	}
	empty := NewHistogram([]float64{1})
	if empty.Quantile(0.5) != 0 || empty.Mean() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := NewHistogram([]float64{1, 2, 4, 8, 16, 32})
		for i := 0; i < 200; i++ {
			h.Observe(rng.Float64() * 40)
		}
		prev := -1.0
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
