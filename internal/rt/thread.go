package rt

import (
	"fmt"
	"sync/atomic"

	"alaska/internal/handle"
	"alaska/internal/mem"
)

// threadState is the barrier-visible execution state of a thread.
type threadState int32

const (
	// stateRunning: executing transformed code; must poll safepoints.
	stateRunning threadState = iota
	// stateParked: stopped at a safepoint inside a barrier.
	stateParked
	// stateExternal: inside an external (uninstrumented) call. Such a
	// thread is already safe: per §4.1.3 no pin sets can exist below the
	// external frame, and the pins above it are stable while it is away.
	stateExternal
)

// Thread is a simulated application thread registered with the runtime. It
// owns a stack of pin sets — one fixed-size set per active function
// invocation — exactly mirroring the stack-allocated pin arrays the Alaska
// compiler emits in each function prelude (§4.1.3).
type Thread struct {
	rt    *Runtime
	state atomic.Int32
	// epoch counts safepoint crossings; grace-period reclamation (the
	// reloc package) uses it to know when no thread can still hold a raw
	// pointer obtained before a given moment.
	epoch atomic.Uint64

	// frames is the stack of pin sets. Only the owning goroutine mutates
	// it, and the barrier initiator reads it only after the thread has
	// quiesced (parked or external), so no per-slot synchronization is
	// needed — the same argument the paper makes for why stack pin sets
	// need no atomics.
	frames [][]handle.Handle
}

// NewThread registers a new application thread. If a barrier is in flight,
// registration waits for it to finish so a fresh thread can never run
// concurrently with a relocation.
func (r *Runtime) NewThread() *Thread {
	t := &Thread{rt: r}
	r.mu.Lock()
	for r.stopRequest.Load() {
		r.resumeCond.Wait()
	}
	r.threads[t] = struct{}{}
	r.mu.Unlock()
	return t
}

// Destroy unregisters the thread. Its pin frames must all be popped.
func (t *Thread) Destroy() error {
	if len(t.frames) != 0 {
		return fmt.Errorf("rt: Destroy of thread with %d live pin frames", len(t.frames))
	}
	// If a barrier is in flight it may be waiting for this thread to
	// quiesce; removing the thread must wake the initiator.
	t.rt.mu.Lock()
	delete(t.rt.threads, t)
	t.rt.quiesceCond.Broadcast()
	t.rt.mu.Unlock()
	return nil
}

// Runtime returns the owning runtime.
func (t *Thread) Runtime() *Runtime { return t.rt }

// PushFrame allocates a pin set of n slots for a function invocation. The
// compiler computes n statically via interference-graph colouring.
func (t *Thread) PushFrame(n int) {
	t.frames = append(t.frames, make([]handle.Handle, n))
}

// PopFrame discards the current invocation's pin set, implicitly unpinning
// everything it held.
func (t *Thread) PopFrame() {
	if len(t.frames) == 0 {
		panic("rt: PopFrame on empty pin stack")
	}
	last := len(t.frames) - 1
	if t.rt.pinMode == CountedPins {
		for _, h := range t.frames[last] {
			if h.IsHandle() {
				_ = t.rt.Table.AddPin(h.ID(), -1)
			}
		}
	}
	t.frames = t.frames[:last]
}

// FrameDepth returns the pin-stack depth (for tests and diagnostics).
func (t *Thread) FrameDepth() int { return len(t.frames) }

// TranslateAndPin records h in slot of the current pin set and returns the
// raw backing address. This is the runtime half of a compiler-inserted
// translate: store to the pin set, then the table load of Figure 5.
// Raw pointers pass through without pinning (the translation function's
// pointer case).
func (t *Thread) TranslateAndPin(h handle.Handle, slot int) (mem.Addr, error) {
	if !h.IsHandle() {
		return mem.Addr(h), nil
	}
	if len(t.frames) == 0 {
		return 0, fmt.Errorf("rt: TranslateAndPin with no pin frame")
	}
	fr := t.frames[len(t.frames)-1]
	if slot < 0 || slot >= len(fr) {
		return 0, fmt.Errorf("rt: pin slot %d out of range (frame has %d)", slot, len(fr))
	}
	// CountedPins (the §3.4 strawman) now costs exactly what the paper
	// charges it with: a cross-core atomic RMW per pin — the sharded table
	// no longer adds a global lock on top.
	if t.rt.pinMode == CountedPins {
		if old := fr[slot]; old.IsHandle() {
			_ = t.rt.Table.AddPin(old.ID(), -1)
		}
		if err := t.rt.Table.AddPin(h.ID(), 1); err != nil {
			return 0, err
		}
	}
	fr[slot] = h
	t.rt.stats.Pins.Add(1)
	return t.rt.translate(h)
}

// Pin is the scoped-pin convenience used by hand-written runtime clients
// (the KV store, examples): it pushes a one-slot frame, pins h, and returns
// the raw address plus an unpin func that pops the frame.
func (t *Thread) Pin(h handle.Handle) (mem.Addr, func(), error) {
	t.PushFrame(1)
	a, err := t.TranslateAndPin(h, 0)
	if err != nil {
		t.PopFrame()
		return 0, nil, err
	}
	return a, t.PopFrame, nil
}

// Translate resolves a handle without pinning it. The caller must not hold
// the resulting address across a safepoint; it exists for momentary reads
// in code that polls no safepoints in between (and for tests).
func (t *Thread) Translate(h handle.Handle) (mem.Addr, error) {
	return t.rt.translate(h)
}

// Safepoint is the poll the compiler inserts on loop back edges, function
// entries, and before external calls. If a barrier has been requested, the
// thread parks until the barrier completes.
func (t *Thread) Safepoint() {
	t.epoch.Add(1)
	if !t.rt.stopRequest.Load() {
		return
	}
	t.park()
}

// Epoch returns the thread's safepoint-crossing count.
func (t *Thread) Epoch() uint64 { return t.epoch.Load() }

func (t *Thread) park() {
	r := t.rt
	r.mu.Lock()
	t.state.Store(int32(stateParked))
	r.quiesceCond.Broadcast()
	for r.stopRequest.Load() {
		r.resumeCond.Wait()
	}
	t.state.Store(int32(stateRunning))
	r.mu.Unlock()
}

// EnterExternal marks the thread as inside an uninstrumented external call
// (e.g. blocked in the kernel). A barrier will not wait for it — this is
// the straggler-signalling path of §4.1.3: because no handle translation
// happens in external code, the thread's extant pin sets are complete and
// stable.
func (t *Thread) EnterExternal() {
	t.epoch.Add(1) // entering external code is a safe point
	r := t.rt
	r.mu.Lock()
	t.state.Store(int32(stateExternal))
	r.quiesceCond.Broadcast()
	r.mu.Unlock()
}

// ExitExternal returns the thread to instrumented code. If a barrier is in
// flight the thread parks immediately rather than racing the relocator.
func (t *Thread) ExitExternal() {
	r := t.rt
	r.mu.Lock()
	for r.stopRequest.Load() {
		// A barrier is running; remain "safe" (parked) until it finishes.
		t.state.Store(int32(stateParked))
		r.quiesceCond.Broadcast()
		r.resumeCond.Wait()
	}
	t.state.Store(int32(stateRunning))
	r.mu.Unlock()
}

// pinnedInto adds every handle currently held in the thread's pin sets to
// set. Called by the barrier initiator after the thread has quiesced.
func (t *Thread) pinnedInto(set map[uint32]bool) {
	for _, fr := range t.frames {
		for _, h := range fr {
			if h.IsHandle() {
				set[h.ID()] = true
			}
		}
	}
}
