package rt_test

// Race-detector stress tests for the runtime over the sharded lock-free
// handle table: many mutator threads doing halloc/hfree/translate/pin
// concurrently with stop-the-world barriers that relocate their objects,
// and with §7 speculative movers racing translation. Run with
// `go test -race ./internal/rt`.

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"alaska/internal/anchorage"
	"alaska/internal/handle"
	"alaska/internal/mallocsim"
	"alaska/internal/mem"
	"alaska/internal/reloc"
	"alaska/internal/rt"
)

// TestRuntimeConcurrentStress runs GOMAXPROCS mutator threads against a
// defragmenting Anchorage service. Each mutator churns private objects
// (halloc → write → translate-and-pin → verify → hfree) while a control
// goroutine keeps initiating barriers that compact the heap, so every
// translation races relocation and every alloc/free races the barrier
// rendezvous. Exercised in both pin-tracking modes.
func TestRuntimeConcurrentStress(t *testing.T) {
	for _, mode := range []struct {
		name string
		m    rt.PinMode
	}{{"StackPins", rt.StackPins}, {"CountedPins", rt.CountedPins}} {
		t.Run(mode.name, func(t *testing.T) {
			space := mem.NewSpace()
			svc := anchorage.NewService(space, anchorage.DefaultConfig())
			r, err := rt.New(space, svc, rt.WithPinMode(mode.m))
			if err != nil {
				t.Fatal(err)
			}
			workers := runtime.GOMAXPROCS(0)
			if workers < 4 {
				workers = 4
			}
			ops := 4000
			if testing.Short() {
				ops = 800
			}

			var wg sync.WaitGroup
			stop := make(chan struct{})
			// Defrag controller: barrier + compaction in a tight loop.
			var barriers atomic.Int64
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					r.Barrier(nil, func(scope *rt.BarrierScope) {
						svc.DefragPass(scope, 1<<20)
					})
					barriers.Add(1)
				}
			}()

			var mwg sync.WaitGroup
			for w := 0; w < workers; w++ {
				mwg.Add(1)
				go func(w int) {
					defer mwg.Done()
					th := r.NewThread()
					defer func() {
						if err := th.Destroy(); err != nil {
							t.Error(err)
						}
					}()
					rng := rand.New(rand.NewSource(int64(w)))
					type obj struct {
						h    handle.Handle
						tag  byte
						size uint64
					}
					var mine []obj
					th.PushFrame(1)
					defer th.PopFrame()
					for op := 0; op < ops; op++ {
						th.Safepoint()
						switch {
						case len(mine) < 8 || rng.Intn(3) == 0:
							size := uint64(16 + rng.Intn(480))
							h, err := r.Halloc(size)
							if err != nil {
								t.Error(err)
								return
							}
							tag := byte(w<<4) | byte(op&0xf)
							a, err := th.TranslateAndPin(h, 0)
							if err != nil {
								t.Error(err)
								return
							}
							buf := make([]byte, size)
							for i := range buf {
								buf[i] = tag
							}
							if err := space.Write(a, buf); err != nil {
								t.Error(err)
								return
							}
							mine = append(mine, obj{h, tag, size})
						case rng.Intn(2) == 0:
							// Verify an object's contents through a fresh
							// pinned translation: relocation must never tear
							// or lose the bytes.
							o := mine[rng.Intn(len(mine))]
							a, err := th.TranslateAndPin(o.h, 0)
							if err != nil {
								t.Error(err)
								return
							}
							buf := make([]byte, o.size)
							if err := space.Read(a, buf); err != nil {
								t.Error(err)
								return
							}
							for i, b := range buf {
								if b != o.tag {
									t.Errorf("worker %d: byte %d = %#x, want %#x (object moved unsafely)", w, i, b, o.tag)
									return
								}
							}
						default:
							k := rng.Intn(len(mine))
							if err := r.Hfree(mine[k].h); err != nil {
								t.Error(err)
								return
							}
							mine = append(mine[:k], mine[k+1:]...)
						}
					}
					for _, o := range mine {
						if err := r.Hfree(o.h); err != nil {
							t.Error(err)
							return
						}
					}
				}(w)
			}
			mwg.Wait()
			close(stop)
			wg.Wait()
			if live := r.Table.Live(); live != 0 {
				t.Errorf("Live = %d after teardown, want 0", live)
			}
			if barriers.Load() == 0 {
				t.Error("controller never completed a barrier")
			}
			t.Logf("%d workers × %d ops, %d defrag barriers, %d objects moved",
				workers, ops, barriers.Load(), r.Stats().MovedObject.Load())
			if err := r.Close(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestSpeculativeMoveTranslateRace drives the §7 protocol end-to-end over
// the malloc service: reader threads translate a fixed working set (with
// safepoint polls) while a mover thread speculatively relocates the same
// objects through the reloc arena. Every translation must resolve to
// either the old or the new copy — both carry the same bytes — and the
// commit/abort accounting must reconcile.
func TestSpeculativeMoveTranslateRace(t *testing.T) {
	space := mem.NewSpace()
	var mover *reloc.Mover
	r, err := rt.New(space, mallocsim.NewService(space), rt.WithFaultHandler(func(r *rt.Runtime, id uint32) error {
		return mover.Handler()(r, id)
	}))
	if err != nil {
		t.Fatal(err)
	}
	arena, err := reloc.NewRegionAllocator(space, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	mover = reloc.NewMover(r, arena)

	const nObjs = 128
	const size = 128
	hs := make([]handle.Handle, nObjs)
	for i := range hs {
		h, err := r.Halloc(size)
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
		th := r.NewThread()
		a, err := th.Translate(h)
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, size)
		for k := range buf {
			buf[k] = byte(i)
		}
		if err := space.Write(a, buf); err != nil {
			t.Fatal(err)
		}
		if err := th.Destroy(); err != nil {
			t.Fatal(err)
		}
	}

	readers := runtime.GOMAXPROCS(0)
	if readers < 3 {
		readers = 3
	}
	iters := 20000
	if testing.Short() {
		iters = 4000
	}
	var wg sync.WaitGroup
	quit := make(chan struct{})
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := r.NewThread()
			defer th.Destroy()
			buf := make([]byte, 1)
			for i := 0; ; i++ {
				select {
				case <-quit:
					return
				default:
				}
				k := (g*31 + i) % nObjs
				a, err := th.Translate(hs[k].Add(int64(i % size)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := space.Read(a, buf); err == nil && buf[0] != byte(k) {
					t.Errorf("object %d read %#x, want %#x", k, buf[0], byte(k))
					return
				}
				th.Safepoint()
			}
		}(g)
	}
	for i := 0; i < iters; i++ {
		if _, err := mover.TryMove(hs[i%nObjs].ID()); err != nil {
			t.Fatal(err)
		}
	}
	close(quit)
	wg.Wait()
	mover.Reclaim()
	total := mover.Commits.Load() + mover.Aborts.Load()
	if total != int64(iters) {
		t.Errorf("commits+aborts = %d, want %d", total, iters)
	}
	t.Logf("%d moves: %d commits, %d aborts, %d old copies reclaimed, %d faults",
		iters, mover.Commits.Load(), mover.Aborts.Load(), mover.Reclaimed.Load(), r.Stats().Faults.Load())
}
