// Package rt implements the Alaska core runtime (§4.2 of the paper): handle
// allocation (halloc/hfree), pin tracking through per-thread stacks of pin
// sets, the stop-the-world barrier that unifies those pin sets, and the
// extensible service interface that backs allocations and exploits object
// mobility.
//
// The paper's runtime stops threads by patching safepoint NOPs into UD2
// instructions and parsing LLVM StackMaps from the SIGILL handler. In this
// simulation, a safepoint is an explicit poll (Thread.Safepoint) and the
// "patching" is an atomic flag — the rendezvous protocol, the treatment of
// threads blocked in external code (they are already at a safe point, since
// no pin sets can exist below an external call, §4.1.3), and the pin-set
// unification are otherwise the same.
package rt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"alaska/internal/handle"
	"alaska/internal/mem"
)

// Service is the pluggable backing-memory manager (§3.5, §4.2.2). It has
// the paper's eight callbacks: two lifetime functions, two backing-memory
// functions, and four metadata functions.
type Service interface {
	// Init is called once when the service is attached to a runtime.
	Init(rt *Runtime) error
	// Deinit is called when the runtime shuts down.
	Deinit() error

	// Alloc provides backing memory for the object owned by handle id.
	// Passing the id lets services track object ownership so they can later
	// update the right HTE when they move the object.
	Alloc(id uint32, size uint64) (mem.Addr, error)
	// Free releases the backing memory of handle id.
	Free(id uint32, addr mem.Addr, size uint64) error

	// UsableSize reports the usable size of the block at addr.
	UsableSize(addr mem.Addr) uint64
	// HeapExtent reports the virtual extent of the service's heap in bytes
	// (the numerator of Anchorage's O(1) fragmentation metric).
	HeapExtent() uint64
	// ActiveBytes reports the total size of live objects (the denominator
	// of the fragmentation metric).
	ActiveBytes() uint64
	// Name identifies the service in logs and experiment output.
	Name() string
}

// FaultHandler is invoked when translation hits an HTE marked invalid
// (a "handle fault", §7). The handler must restore the entry (e.g. swap the
// object back in and SetBacking + SetInvalid(false)) or return an error.
type FaultHandler func(rt *Runtime, id uint32) error

// PinMode selects how pinned handles are tracked (§3.4).
type PinMode int

const (
	// StackPins is the paper's design: pins are recorded in per-invocation
	// pin sets on each thread's stack; no shared-state updates on the pin
	// path.
	StackPins PinMode = iota
	// CountedPins is the naïve strawman the paper rejects: an atomic
	// pin-count per HTE. Kept for the ablation benchmark that shows its
	// cross-core contention cost.
	CountedPins
)

// Runtime is the Alaska core runtime instance.
type Runtime struct {
	Space *mem.Space
	// Table is the sharded, read-lock-free handle table: Translate is a
	// pure atomic load chain, so mutator threads scale across cores and
	// the §7 speculative-move protocol can relocate objects while they
	// translate concurrently (see internal/handle/sharded.go).
	Table *handle.Table

	svc     Service
	onFault FaultHandler
	pinMode PinMode

	mu      sync.Mutex
	threads map[*Thread]struct{}

	// Barrier machinery.
	barrierMu   sync.Mutex  // serializes initiators
	stopRequest atomic.Bool // the "patched NOP": threads poll this
	quiesceCond *sync.Cond  // signalled by threads entering a safe state
	resumeCond  *sync.Cond  // broadcast when the barrier completes
	// barrierWaitObs, when set, observes each barrier's safepoint
	// rendezvous wait (see SetBarrierWaitObserver).
	barrierWaitObs atomic.Pointer[func(time.Duration)]

	// Statistics.
	stats Stats
}

// Stats counts runtime events; all fields are monotonically increasing.
type Stats struct {
	Hallocs     atomic.Int64
	Hfrees      atomic.Int64
	Translates  atomic.Int64
	Pins        atomic.Int64
	Barriers    atomic.Int64
	Faults      atomic.Int64
	MovedBytes  atomic.Int64
	MovedObject atomic.Int64
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithPinMode selects the pin-tracking implementation.
func WithPinMode(m PinMode) Option { return func(r *Runtime) { r.pinMode = m } }

// WithFaultHandler installs the handle-fault handler.
func WithFaultHandler(h FaultHandler) Option { return func(r *Runtime) { r.onFault = h } }

// New creates a runtime on the given address space with the given service.
func New(space *mem.Space, svc Service, opts ...Option) (*Runtime, error) {
	r := &Runtime{
		Space:   space,
		Table:   handle.NewTable(),
		svc:     svc,
		threads: make(map[*Thread]struct{}),
	}
	r.quiesceCond = sync.NewCond(&r.mu)
	r.resumeCond = sync.NewCond(&r.mu)
	for _, o := range opts {
		o(r)
	}
	if err := svc.Init(r); err != nil {
		return nil, fmt.Errorf("rt: service init: %w", err)
	}
	return r, nil
}

// Close shuts the runtime down, deinitializing the service.
func (r *Runtime) Close() error {
	r.mu.Lock()
	n := len(r.threads)
	r.mu.Unlock()
	if n != 0 {
		return fmt.Errorf("rt: Close with %d live threads", n)
	}
	return r.svc.Deinit()
}

// Service returns the attached service.
func (r *Runtime) Service() Service { return r.svc }

// Stats returns a pointer to the runtime's event counters.
func (r *Runtime) Stats() *Stats { return &r.stats }

// Halloc allocates size bytes of handle-managed memory and returns the
// handle word the program will treat as a pointer.
func (r *Runtime) Halloc(size uint64) (handle.Handle, error) {
	if size == 0 {
		size = 1 // malloc(0) must return a unique pointer
	}
	id, err := r.Table.Alloc(0, size)
	if err != nil {
		return 0, err
	}
	addr, err := r.svc.Alloc(id, size)
	if err != nil {
		freeErr := r.Table.Free(id)
		return 0, errors.Join(err, freeErr)
	}
	if err := r.Table.SetBacking(id, addr); err != nil {
		return 0, err
	}
	r.stats.Hallocs.Add(1)
	return handle.Make(id, 0), nil
}

// Hfree releases the object behind h. The handle must reference offset 0,
// mirroring free()'s requirement of the original malloc pointer.
func (r *Runtime) Hfree(h handle.Handle) error {
	if !h.IsHandle() {
		return fmt.Errorf("rt: Hfree of raw pointer %#x (baseline pointers are not handle-managed)", uint64(h))
	}
	if h.Offset() != 0 {
		return fmt.Errorf("rt: Hfree of interior handle %v", h)
	}
	id := h.ID()
	e, err := r.Table.Get(id)
	if err != nil {
		return err
	}
	if err := r.svc.Free(id, e.Backing, e.Size); err != nil {
		return err
	}
	if err := r.Table.Free(id); err != nil {
		return err
	}
	r.stats.Hfrees.Add(1)
	return nil
}

// SizeOf returns the allocation size behind a handle.
func (r *Runtime) SizeOf(h handle.Handle) (uint64, error) {
	if !h.IsHandle() {
		return 0, fmt.Errorf("rt: SizeOf of raw pointer")
	}
	e, err := r.Table.Get(h.ID())
	if err != nil {
		return 0, err
	}
	return e.Size, nil
}

// translate resolves h, running the fault path if the entry is invalid.
// The common case is entirely lock-free: Table.Translate performs atomic
// loads only, so concurrent translations never serialize — the property
// the paper's low overhead rests on. The retry loop is the accessor side
// of §7: a fault handler that revalidates (or swaps in) the entry lets the
// next iteration succeed at the restored address.
func (r *Runtime) translate(h handle.Handle) (mem.Addr, error) {
	for {
		a, err := r.Table.Translate(h)
		if err == nil {
			r.stats.Translates.Add(1)
			return a, nil
		}
		if !errors.Is(err, handle.ErrHandleFault) {
			return 0, err
		}
		r.stats.Faults.Add(1)
		if r.onFault == nil {
			return 0, fmt.Errorf("rt: handle fault on %v with no fault handler", h)
		}
		if err := r.onFault(r, h.ID()); err != nil {
			return 0, fmt.Errorf("rt: fault handler: %w", err)
		}
	}
}

// EpochSnapshot captures every registered thread's safepoint epoch. Pair
// with QuiescentSince for grace-period ("handshake") reclamation: memory
// unlinked at snapshot time may be reused once QuiescentSince(snapshot)
// holds, because no thread can still act on a raw pointer translated
// before the snapshot without having crossed a safepoint.
func (r *Runtime) EpochSnapshot() map[*Thread]uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	snap := make(map[*Thread]uint64, len(r.threads))
	for t := range r.threads {
		snap[t] = t.epoch.Load()
	}
	return snap
}

// QuiescentSince reports whether every thread in the snapshot has crossed
// a safepoint since it was taken (threads that have exited, are parked in
// a barrier, or are blocked in external code count as quiescent).
func (r *Runtime) QuiescentSince(snap map[*Thread]uint64) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for t, e := range snap {
		if _, live := r.threads[t]; !live {
			continue
		}
		if threadState(t.state.Load()) != stateRunning {
			continue
		}
		if t.epoch.Load() == e {
			return false
		}
	}
	return true
}

// Fragmentation returns the service's current fragmentation ratio: virtual
// heap extent over active object bytes (§4.3). Returns 1 when the heap is
// empty.
func (r *Runtime) Fragmentation() float64 {
	active := r.svc.ActiveBytes()
	if active == 0 {
		return 1
	}
	return float64(r.svc.HeapExtent()) / float64(active)
}
