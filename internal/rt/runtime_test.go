package rt

import (
	"sync"
	"testing"
	"time"

	"alaska/internal/handle"
	"alaska/internal/mem"
)

// bumpService is a minimal backing-memory service for runtime tests: a
// bump allocator over one big region, never freeing.
type bumpService struct {
	space  *mem.Space
	region *mem.Region
	off    uint64
	active uint64
}

func (b *bumpService) Init(*Runtime) error {
	r, err := b.space.Map(16 << 20)
	if err != nil {
		return err
	}
	b.region = r
	return nil
}
func (b *bumpService) Deinit() error { return nil }
func (b *bumpService) Alloc(_ uint32, size uint64) (mem.Addr, error) {
	aligned := (size + 15) &^ 15
	addr := b.region.Base() + mem.Addr(b.off)
	b.off += aligned
	b.active += size
	return addr, nil
}
func (b *bumpService) Free(_ uint32, _ mem.Addr, size uint64) error {
	b.active -= size
	return nil
}
func (b *bumpService) UsableSize(mem.Addr) uint64 { return 0 }
func (b *bumpService) HeapExtent() uint64         { return b.off }
func (b *bumpService) ActiveBytes() uint64        { return b.active }
func (b *bumpService) Name() string               { return "test-bump" }

func newTestRuntime(t *testing.T, opts ...Option) (*Runtime, *mem.Space) {
	t.Helper()
	space := mem.NewSpace()
	r, err := New(space, &bumpService{space: space}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return r, space
}

func TestHallocHfree(t *testing.T) {
	r, space := newTestRuntime(t)
	h, err := r.Halloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if !h.IsHandle() || h.Offset() != 0 {
		t.Fatalf("Halloc returned %v", h)
	}
	th := r.NewThread()
	addr, unpin, err := th.Pin(h)
	if err != nil {
		t.Fatal(err)
	}
	if err := space.WriteU64(addr, 42); err != nil {
		t.Fatal(err)
	}
	v, err := space.ReadU64(addr)
	if err != nil || v != 42 {
		t.Fatalf("read back %d, %v", v, err)
	}
	unpin()
	if err := r.Hfree(h); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Translate(h); err == nil {
		t.Error("translate after Hfree succeeded")
	}
	if err := th.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHfreeErrors(t *testing.T) {
	r, _ := newTestRuntime(t)
	h, _ := r.Halloc(64)
	if err := r.Hfree(h.Add(8)); err == nil {
		t.Error("Hfree of interior handle succeeded")
	}
	if err := r.Hfree(handle.Handle(0x1234)); err == nil {
		t.Error("Hfree of raw pointer succeeded")
	}
	if err := r.Hfree(h); err != nil {
		t.Fatal(err)
	}
	if err := r.Hfree(h); err == nil {
		t.Error("double Hfree succeeded")
	}
}

func TestSizeOf(t *testing.T) {
	r, _ := newTestRuntime(t)
	h, _ := r.Halloc(100)
	n, err := r.SizeOf(h)
	if err != nil || n != 100 {
		t.Errorf("SizeOf = %d, %v; want 100", n, err)
	}
}

func TestHallocZeroBehavesLikeMallocZero(t *testing.T) {
	r, _ := newTestRuntime(t)
	h1, err := r.Halloc(0)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := r.Halloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("Halloc(0) returned identical handles")
	}
}

func TestPinFramesAndSlots(t *testing.T) {
	r, _ := newTestRuntime(t)
	th := r.NewThread()
	h1, _ := r.Halloc(16)
	h2, _ := r.Halloc(16)

	th.PushFrame(2)
	if _, err := th.TranslateAndPin(h1, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := th.TranslateAndPin(h2, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := th.TranslateAndPin(h1, 5); err == nil {
		t.Error("out-of-range slot accepted")
	}
	// Both pinned: barrier must refuse to move either.
	r.Barrier(th, func(s *BarrierScope) {
		if !s.Pinned(h1.ID()) || !s.Pinned(h2.ID()) {
			t.Error("pinned handles not visible in barrier scope")
		}
		if err := s.Relocate(h1.ID(), 0x9000); err == nil {
			t.Error("Relocate of pinned object succeeded")
		}
	})
	th.PopFrame()
	r.Barrier(th, func(s *BarrierScope) {
		if s.Pinned(h1.ID()) {
			t.Error("handle still pinned after frame pop")
		}
	})
}

func TestTranslateAndPinPointerPassthrough(t *testing.T) {
	r, _ := newTestRuntime(t)
	th := r.NewThread()
	th.PushFrame(1)
	a, err := th.TranslateAndPin(handle.Handle(0xABC0), 0)
	if err != nil || a != 0xABC0 {
		t.Errorf("pointer passthrough = %#x, %v", a, err)
	}
	r.Barrier(th, func(s *BarrierScope) {
		if s.PinnedCount() != 0 {
			t.Error("raw pointer was recorded as a pin")
		}
	})
}

func TestTranslateAndPinRequiresFrame(t *testing.T) {
	r, _ := newTestRuntime(t)
	th := r.NewThread()
	h, _ := r.Halloc(8)
	if _, err := th.TranslateAndPin(h, 0); err == nil {
		t.Error("pin with no frame succeeded")
	}
}

func TestRelocatePreservesContents(t *testing.T) {
	r, space := newTestRuntime(t)
	th := r.NewThread()
	h, _ := r.Halloc(64)
	addr, _ := th.Translate(h)
	if err := space.Write(addr, []byte("relocatable payload")); err != nil {
		t.Fatal(err)
	}
	dst, err := space.Map(mem.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	// The test goroutine owns th, so it must identify itself as the
	// initiator; a nil initiator would wait forever for th to park.
	r.Barrier(th, func(s *BarrierScope) {
		if err := s.Relocate(h.ID(), dst.Base()); err != nil {
			t.Fatal(err)
		}
	})
	// The handle now resolves to the new location with intact contents.
	newAddr, err := th.Translate(h)
	if err != nil {
		t.Fatal(err)
	}
	if newAddr != dst.Base() {
		t.Errorf("after move handle resolves to %#x, want %#x", newAddr, dst.Base())
	}
	buf := make([]byte, 19)
	if err := space.Read(newAddr, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "relocatable payload" {
		t.Errorf("contents after move = %q", buf)
	}
	if r.Stats().MovedObject.Load() != 1 {
		t.Errorf("MovedObject = %d", r.Stats().MovedObject.Load())
	}
}

func TestBarrierStopsRunningThreads(t *testing.T) {
	r, _ := newTestRuntime(t)
	const nThreads = 4
	var stop sync.WaitGroup
	quit := make(chan struct{})
	started := make(chan struct{}, nThreads)
	var mu sync.Mutex
	inBarrier := false
	violations := 0

	for i := 0; i < nThreads; i++ {
		stop.Add(1)
		go func() {
			defer stop.Done()
			th := r.NewThread()
			defer th.Destroy()
			started <- struct{}{}
			for {
				select {
				case <-quit:
					return
				default:
				}
				// Simulated mutator work: must never overlap the barrier
				// callback.
				mu.Lock()
				if inBarrier {
					violations++
				}
				mu.Unlock()
				th.Safepoint()
			}
		}()
	}
	for i := 0; i < nThreads; i++ {
		<-started
	}
	for i := 0; i < 20; i++ {
		r.Barrier(nil, func(s *BarrierScope) {
			mu.Lock()
			inBarrier = true
			mu.Unlock()
			time.Sleep(200 * time.Microsecond)
			mu.Lock()
			inBarrier = false
			mu.Unlock()
		})
	}
	close(quit)
	stop.Wait()
	if violations != 0 {
		t.Errorf("%d mutator steps overlapped a barrier", violations)
	}
	if got := r.Stats().Barriers.Load(); got != 20 {
		t.Errorf("Barriers = %d, want 20", got)
	}
}

// A thread blocked in an external call must not stall the barrier — the
// straggler path of §4.1.3.
func TestBarrierDoesNotWaitForExternalThreads(t *testing.T) {
	r, _ := newTestRuntime(t)
	th := r.NewThread()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		th.EnterExternal()
		<-release // "blocked in the kernel"
		th.ExitExternal()
		close(done)
	}()
	// Give the goroutine time to enter the external state.
	for i := 0; i < 1000; i++ {
		if threadState(th.state.Load()) == stateExternal {
			break
		}
		time.Sleep(time.Millisecond)
	}
	barrierRan := make(chan struct{})
	go func() {
		r.Barrier(nil, func(*BarrierScope) {})
		close(barrierRan)
	}()
	select {
	case <-barrierRan:
	case <-time.After(5 * time.Second):
		t.Fatal("barrier waited for a thread blocked in external code")
	}
	close(release)
	<-done
	if err := th.Destroy(); err != nil {
		t.Fatal(err)
	}
}

// A thread returning from external code while a barrier is running must
// wait for the barrier to finish before resuming instrumented execution.
func TestExitExternalWaitsForBarrier(t *testing.T) {
	r, _ := newTestRuntime(t)
	th := r.NewThread()
	th.EnterExternal()

	barrierEntered := make(chan struct{})
	releaseBarrier := make(chan struct{})
	go func() {
		r.Barrier(nil, func(*BarrierScope) {
			close(barrierEntered)
			<-releaseBarrier
		})
	}()
	<-barrierEntered

	resumed := make(chan struct{})
	go func() {
		th.ExitExternal()
		close(resumed)
	}()
	select {
	case <-resumed:
		t.Fatal("ExitExternal returned while barrier was still running")
	case <-time.After(50 * time.Millisecond):
	}
	close(releaseBarrier)
	select {
	case <-resumed:
	case <-time.After(5 * time.Second):
		t.Fatal("ExitExternal never resumed after barrier completed")
	}
	if err := th.Destroy(); err != nil {
		t.Fatal(err)
	}
}

func TestCountedPinsMode(t *testing.T) {
	r, _ := newTestRuntime(t, WithPinMode(CountedPins))
	th := r.NewThread()
	h, _ := r.Halloc(32)
	th.PushFrame(1)
	if _, err := th.TranslateAndPin(h, 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Table.PinCount(h.ID()); got != 1 {
		t.Errorf("PinCount = %d, want 1", got)
	}
	// Overwriting the slot with another handle unpins the old one.
	h2, _ := r.Halloc(32)
	if _, err := th.TranslateAndPin(h2, 0); err != nil {
		t.Fatal(err)
	}
	if got := r.Table.PinCount(h.ID()); got != 0 {
		t.Errorf("old PinCount = %d, want 0", got)
	}
	if got := r.Table.PinCount(h2.ID()); got != 1 {
		t.Errorf("new PinCount = %d, want 1", got)
	}
	th.PopFrame()
	if got := r.Table.PinCount(h2.ID()); got != 0 {
		t.Errorf("PinCount after PopFrame = %d, want 0", got)
	}
}

func TestHandleFaultDispatch(t *testing.T) {
	faulted := 0
	var fh FaultHandler = func(r *Runtime, id uint32) error {
		faulted++
		return r.Table.SetInvalid(id, false)
	}
	r, _ := newTestRuntime(t, WithFaultHandler(fh))
	th := r.NewThread()
	h, _ := r.Halloc(16)
	if err := r.Table.SetInvalid(h.ID(), true); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Translate(h); err != nil {
		t.Fatal(err)
	}
	if faulted != 1 {
		t.Errorf("fault handler ran %d times, want 1", faulted)
	}
	if r.Stats().Faults.Load() != 1 {
		t.Errorf("Faults stat = %d, want 1", r.Stats().Faults.Load())
	}
}

func TestHandleFaultWithoutHandlerErrors(t *testing.T) {
	r, _ := newTestRuntime(t)
	th := r.NewThread()
	h, _ := r.Halloc(16)
	if err := r.Table.SetInvalid(h.ID(), true); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Translate(h); err == nil {
		t.Error("fault with no handler succeeded")
	}
}

func TestFragmentationMetric(t *testing.T) {
	r, _ := newTestRuntime(t)
	if got := r.Fragmentation(); got != 1 {
		t.Errorf("empty-heap fragmentation = %v, want 1", got)
	}
	if _, err := r.Halloc(1024); err != nil {
		t.Fatal(err)
	}
	if got := r.Fragmentation(); got < 1 {
		t.Errorf("fragmentation = %v, want >= 1", got)
	}
}

func TestCloseRejectsLiveThreads(t *testing.T) {
	r, _ := newTestRuntime(t)
	th := r.NewThread()
	if err := r.Close(); err == nil {
		t.Error("Close with live thread succeeded")
	}
	if err := th.Destroy(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentPinningAndBarriers(t *testing.T) {
	r, space := newTestRuntime(t)
	const nThreads = 4
	handles := make([]handle.Handle, 64)
	for i := range handles {
		h, err := r.Halloc(64)
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
		a, _ := r.Table.Translate(h)
		if err := space.WriteU64(mem.Addr(a), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	quit := make(chan struct{})
	for g := 0; g < nThreads; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := r.NewThread()
			defer th.Destroy()
			for i := 0; ; i++ {
				select {
				case <-quit:
					return
				default:
				}
				h := handles[(g*13+i)%len(handles)]
				addr, unpin, err := th.Pin(h)
				if err != nil {
					t.Errorf("pin: %v", err)
					return
				}
				v, err := space.ReadU64(addr)
				if err != nil || v != uint64((g*13+i)%len(handles)) {
					t.Errorf("object %d read %d (%v) — moved while pinned?", (g*13+i)%len(handles), v, err)
					unpin()
					return
				}
				unpin()
				th.Safepoint()
			}
		}(g)
	}
	// Concurrently shuffle unpinned objects to fresh locations.
	scratch, err := space.Map(64 * 64)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 30; round++ {
		r.Barrier(nil, func(s *BarrierScope) {
			for i, h := range handles {
				if s.Pinned(h.ID()) {
					continue
				}
				dst := scratch.Base() + mem.Addr((i+round)%64*64)
				// Destination slots collide across objects; only move one
				// object per round to keep contents disjoint.
				if i%64 == round%64 {
					if err := s.Relocate(h.ID(), dst); err != nil {
						t.Errorf("relocate: %v", err)
					}
				}
			}
		})
		time.Sleep(time.Millisecond)
	}
	close(quit)
	wg.Wait()
}
