package rt

import (
	"fmt"
	"time"

	"alaska/internal/mem"
)

// BarrierScope is handed to the barrier callback while the world is
// stopped. It exposes the unified pin set and the O(1) relocation
// primitive services build movement policies on.
type BarrierScope struct {
	rt     *Runtime
	pinned map[uint32]bool
}

// Pinned reports whether the object owned by handle id may not be moved:
// some thread holds a translation of it in a live pin set (or, in
// CountedPins mode, its HTE pin count is nonzero).
func (s *BarrierScope) Pinned(id uint32) bool {
	if s.pinned[id] {
		return true
	}
	if s.rt.pinMode == CountedPins {
		return s.rt.Table.PinCount(id) > 0
	}
	return false
}

// PinnedCount returns the number of distinct pinned handles.
func (s *BarrierScope) PinnedCount() int { return len(s.pinned) }

// Relocate copies the object owned by id to dst and updates its HTE — the
// single-reference update that makes handle-based movement O(1). It fails
// if the object is pinned.
func (s *BarrierScope) Relocate(id uint32, dst mem.Addr) error {
	if s.Pinned(id) {
		return fmt.Errorf("rt: Relocate of pinned handle %d", id)
	}
	e, err := s.rt.Table.Get(id)
	if err != nil {
		return err
	}
	if e.Backing == dst {
		return nil
	}
	if err := s.rt.Space.Copy(dst, e.Backing, e.Size); err != nil {
		return err
	}
	if err := s.rt.Table.SetBacking(id, dst); err != nil {
		return err
	}
	s.rt.stats.MovedBytes.Add(int64(e.Size))
	s.rt.stats.MovedObject.Add(1)
	return nil
}

// Runtime returns the runtime the scope belongs to.
func (s *BarrierScope) Runtime() *Runtime { return s.rt }

// SetBarrierWaitObserver installs fn, called after each barrier with the
// time the initiator spent waiting for every thread to reach a safepoint
// (the rendezvous cost the paper's pause claims are about, distinct from
// the time fn itself holds the world). Pass nil to remove. The observer
// is called outside all runtime locks and must be safe for concurrent
// use; it powers alaskad's safepoint-wait histogram.
func (r *Runtime) SetBarrierWaitObserver(fn func(wait time.Duration)) {
	if fn == nil {
		r.barrierWaitObs.Store(nil)
		return
	}
	r.barrierWaitObs.Store(&fn)
}

// Barrier stops the world, unifies all threads' pin sets, and runs fn with
// the resulting scope; then it resumes all threads (§4.1.3, "Barriers and
// Pin Set Unification").
//
// initiator identifies the calling thread when the caller is itself a
// registered application thread (it is then treated as already safe — a
// barrier call site is by definition a safepoint). Pass nil when calling
// from a control goroutine such as a defragmentation controller.
func (r *Runtime) Barrier(initiator *Thread, fn func(*BarrierScope)) {
	r.barrierMu.Lock()
	defer r.barrierMu.Unlock()

	waitStart := time.Now()
	r.stopRequest.Store(true)
	r.mu.Lock()
	// Wait until every registered thread is parked or in external code.
	for {
		allSafe := true
		for t := range r.threads {
			if t == initiator {
				continue
			}
			if threadState(t.state.Load()) == stateRunning {
				allSafe = false
				break
			}
		}
		if allSafe {
			break
		}
		r.quiesceCond.Wait()
	}
	// The world is stopped: every thread's pin sets are stable. Unify them.
	pinned := make(map[uint32]bool)
	for t := range r.threads {
		t.pinnedInto(pinned)
	}
	r.mu.Unlock()
	if obs := r.barrierWaitObs.Load(); obs != nil {
		(*obs)(time.Since(waitStart))
	}

	r.stats.Barriers.Add(1)
	fn(&BarrierScope{rt: r, pinned: pinned})

	r.mu.Lock()
	r.stopRequest.Store(false)
	r.resumeCond.Broadcast()
	r.mu.Unlock()
}
