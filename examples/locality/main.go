// Locality example: the second §7 extension. A linked structure whose
// traversal order is scattered across the heap gets repacked — via nothing
// but handle relocation — so the traversal becomes sequential in memory.
// The paper's point: once objects can move, locality optimization is a
// small service, not a research system.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"alaska/internal/anchorage"
	"alaska/internal/locality"
	"alaska/internal/rt"
	"alaska/pkg/alaska"
)

func main() {
	log.SetFlags(0)
	sys, err := alaska.NewSystem(alaska.WithAnchorage(anchorage.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	th := sys.NewThread()
	defer th.Destroy()

	// A 1024-node structure allocated in one order...
	const n = 1024
	handles := make([]alaska.Handle, n)
	for i := range handles {
		h, err := sys.Halloc(64)
		if err != nil {
			log.Fatal(err)
		}
		handles[i] = h
	}
	// ...but traversed in a completely different (shuffled) order, the
	// way a hash-table iteration or an aged LRU list would be.
	rng := rand.New(rand.NewSource(1))
	order := make([]uint32, n)
	for i, k := range rng.Perm(n) {
		order[i] = handles[k].ID()
	}

	before, err := locality.PageSwitches(sys.Runtime(), order)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("traversal before clustering: %d page switches over %d accesses\n", before, n)

	// Record the traversal, then let the optimizer repack it.
	tracker := locality.NewTracker(0)
	for _, id := range order {
		tracker.Touch(id)
	}
	opt, err := locality.NewOptimizer(sys.Runtime(), tracker, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	var moved int
	sys.Barrier(th, func(scope *rt.BarrierScope) {
		moved = opt.Optimize(scope)
	})
	after, err := locality.PageSwitches(sys.Runtime(), order)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer relocated %d objects (one HTE store each)\n", moved)
	fmt.Printf("traversal after clustering:  %d page switches (%.0fx better)\n",
		after, float64(before)/float64(after))
	fmt.Println("\nno application pointer changed: every reference is a handle, so the")
	fmt.Println("layout change was invisible — the §7 locality service in ~150 lines.")
}
