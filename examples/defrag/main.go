// Defrag example: a miniature of the paper's Figure 9 — run the same
// Redis-style LRU-cache churn over the baseline allocator and over
// Alaska+Anchorage, and print the two RSS trajectories side by side.
package main

import (
	"fmt"
	"log"
	"time"

	"alaska/internal/figures"
)

func main() {
	log.SetFlags(0)
	cfg := figures.DefaultDefragConfig(0.125) // 12.5 MiB maxmemory
	fmt.Printf("workload: insert %.0fx of a %.1f MiB maxmemory budget; LRU eviction; hot keys survive\n\n",
		cfg.InsertFactor, float64(cfg.MaxMemory)/(1<<20))

	results := make(map[string]figures.DefragResult)
	for _, name := range []string{"baseline", "anchorage"} {
		r, err := figures.RunDefrag(name, cfg)
		if err != nil {
			log.Fatal(err)
		}
		results[name] = r
	}

	base, anch := results["baseline"], results["anchorage"]
	fmt.Println("time      baseline RSS    anchorage RSS")
	end := base.Series.Points[len(base.Series.Points)-1].T
	for t := time.Duration(0); t <= end; t += end / 12 {
		fmt.Printf("%7.2fs  %9.1f MB    %9.1f MB\n",
			t.Seconds(), base.Series.At(t)/1e6, anch.Series.At(t)/1e6)
	}
	fmt.Printf("\nactive data at end: %.1f MB in both stores\n", float64(base.Active)/1e6)
	saving := 1 - float64(anch.FinalRSS)/float64(base.FinalRSS)
	fmt.Printf("anchorage finishes at %.1f MB vs baseline %.1f MB: %.0f%% saved\n",
		float64(anch.FinalRSS)/1e6, float64(base.FinalRSS)/1e6, saving*100)
	fmt.Printf("stop-the-world time spent defragmenting: %v\n", anch.Pauses)
	fmt.Println("\nthe paper's Figure 9 shows the same shape at 100 MiB: ~300 MB flat baseline, anchorage dropping to ~150 MB")
}
