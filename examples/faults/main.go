// Faults example: the §7 extension. Cold objects are swapped out to a
// compressed in-memory "disk" — their handle table entries marked invalid
// and their backing memory freed. The next access faults through the
// handle table and the runtime transparently swaps the object back in,
// exactly as a kernel would service a page fault, but at object
// granularity.
package main

import (
	"fmt"
	"log"

	"alaska/internal/anchorage"
	"alaska/internal/swap"
	"alaska/pkg/alaska"
)

func main() {
	log.SetFlags(0)
	store := swap.NewMemStore(true) // DEFLATE-compressed cold storage
	sys, err := alaska.NewSystem(
		alaska.WithAnchorage(anchorage.DefaultConfig()),
		alaska.WithSwapping(store),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()
	th := sys.NewThread()
	defer th.Destroy()

	// A working set of 4 KiB objects filled with compressible data.
	const n = 256
	var hs []alaska.Handle
	for i := 0; i < n; i++ {
		h, err := sys.Halloc(4096)
		if err != nil {
			log.Fatal(err)
		}
		addr, unpin, err := th.Pin(h)
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 4096)
		for k := range buf {
			buf[k] = byte(i) // highly compressible
		}
		if err := sys.Space().Write(addr, buf); err != nil {
			log.Fatal(err)
		}
		unpin()
		hs = append(hs, h)
	}
	fmt.Printf("working set: %d objects, %.1f KB active, RSS %.1f KB\n",
		n, float64(sys.ActiveBytes())/1024, float64(sys.RSS())/1024)

	// Swap out the cold 75%: their memory is freed; only the compressed
	// blobs remain.
	sys.Barrier(th, func(scope *alaska.BarrierScope) {
		for _, h := range hs[:n*3/4] {
			if err := sys.Swapper().SwapOut(scope, h.ID()); err != nil {
				log.Fatal(err)
			}
		}
	})
	if _, err := sys.Defrag(th); err != nil { // compact what remains
		log.Fatal(err)
	}
	fmt.Printf("after swapping out 75%%: active %.1f KB, RSS %.1f KB, disk %.1f KB (compressed)\n",
		float64(sys.ActiveBytes())/1024, float64(sys.RSS())/1024, float64(store.Bytes())/1024)

	// Touch a swapped object: the translation faults, the handler swaps
	// it back in, and the access proceeds — the program never knows.
	victim := hs[10]
	addr, unpin, err := th.Pin(victim) // faults here
	if err != nil {
		log.Fatal(err)
	}
	v, err := sys.Space().ReadU8(addr)
	unpin()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("faulting access to object 10 returned byte %d (want 10): transparent swap-in\n", v)
	fmt.Printf("runtime handled %d handle faults; swapper: %d out, %d in\n",
		sys.Runtime().Stats().Faults.Load(), sys.Swapper().SwappedOut, sys.Swapper().SwappedIn)
}
