// Compilerdemo: watch the Alaska compiler transform a pointer program.
// It builds the paper's two contrasting cases in IR — a dense grid loop
// (translation hoists to the outermost preheader, §4.1.2) and a linked-
// list walk (every hop loads a fresh pointer, nothing hoists) — prints the
// transformed IR, and compares the measured cycle overheads.
package main

import (
	"fmt"
	"log"

	"alaska/internal/ir"
	"alaska/internal/workloads"
	"alaska/pkg/alaska"
)

func demo(name string, build func() *ir.Module) {
	fmt.Printf("=== %s ===\n", name)
	baseMod := build()
	baseV, baseCycles, err := alaska.RunBaseline(baseMod, "main")
	if err != nil {
		log.Fatal(err)
	}

	mod := build()
	st, err := alaska.Compile(mod, alaska.DefaultCompileOptions)
	if err != nil {
		log.Fatal(err)
	}
	v, cycles, err := alaska.RunAlaska(mod, "main")
	if err != nil {
		log.Fatal(err)
	}
	if v != baseV {
		log.Fatalf("%s: transformation changed the result: %d vs %d", name, v, baseV)
	}
	fmt.Printf("translations inserted: %d (hoisted: %d)   pin set: %d slots   safepoints: %d\n",
		st.Translates, st.Hoisted, st.MaxPinSetSize, st.Safepoints)
	fmt.Printf("cycles: baseline %d, alaska %d  ->  overhead %+.1f%%\n",
		baseCycles, cycles, float64(cycles-baseCycles)/float64(baseCycles)*100)
	fmt.Println("\ntransformed main:")
	fmt.Print(mod.Funcs[0].String())
	fmt.Println()
}

func main() {
	log.SetFlags(0)
	fmt.Println("the same compiler pipeline the paper applies to LLVM IR, on two access patterns:")
	fmt.Println()
	demo("dense grid (hoistable, like 619.lbm)", func() *ir.Module {
		return workloads.BuildGrid(64, 4, 2)
	})
	demo("linked-list walk (pointer chasing, like sglib)", func() *ir.Module {
		return workloads.BuildListTraversal(32, 4, 2)
	})
	fmt.Println("note how the grid's translate sits in a preheader while the list translates inside the loop —")
	fmt.Println("that placement difference is the entire story of the paper's Figure 7.")
}
