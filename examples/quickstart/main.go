// Quickstart: allocate handle-managed memory, pin it around accesses, move
// every object with Anchorage, and observe that handles survive the move —
// the core capability the paper brings to unmanaged code.
package main

import (
	"fmt"
	"log"

	"alaska/internal/anchorage"
	"alaska/pkg/alaska"
)

func main() {
	log.SetFlags(0)
	sys, err := alaska.NewSystem(alaska.WithAnchorage(anchorage.DefaultConfig()))
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	th := sys.NewThread()
	defer th.Destroy()

	// halloc returns a handle: a 64-bit word the program treats exactly
	// like a pointer (top bit distinguishes it from raw addresses).
	h, err := sys.Halloc(64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated: %v\n", h)

	// To access memory the handle is pinned: translation yields the raw
	// address and the object cannot move for the pin's lifetime. The
	// Alaska compiler does this automatically for compiled code; runtime
	// clients use the scoped-pin helper.
	addr, unpin, err := th.Pin(h)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Space().WriteU64(addr, 0xC0FFEE); err != nil {
		log.Fatal(err)
	}
	unpin()
	fmt.Printf("wrote through pinned address %#x\n", addr)

	// Fragment the heap: allocate (and touch) a pile of objects, then
	// free most of them, leaving survivors scattered across the pages.
	var junk []alaska.Handle
	for i := 0; i < 4096; i++ {
		j, err := sys.Halloc(512)
		if err != nil {
			log.Fatal(err)
		}
		ja, junpin, err := th.Pin(j)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Space().WriteU64(ja, uint64(i)); err != nil {
			log.Fatal(err)
		}
		junpin()
		junk = append(junk, j)
	}
	for i, j := range junk {
		if i%7 != 0 {
			if err := sys.Hfree(j); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Printf("fragmentation before defrag: %.2fx, RSS %.1f KB\n",
		sys.Fragmentation(), float64(sys.RSS())/1024)

	// Defragment: Anchorage moves every unpinned object and returns the
	// vacated pages. The handle we wrote through is still valid.
	moved, err := sys.Defrag(th)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("defrag moved %.1f KB\n", float64(moved)/1024)
	fmt.Printf("fragmentation after defrag:  %.2fx, RSS %.1f KB\n",
		sys.Fragmentation(), float64(sys.RSS())/1024)

	newAddr, err := th.Translate(h)
	if err != nil {
		log.Fatal(err)
	}
	v, err := sys.Space().ReadU64(newAddr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("object moved %#x -> %#x; value still %#x\n", addr, newAddr, v)
	if v != 0xC0FFEE {
		log.Fatal("value corrupted!")
	}
	fmt.Println("ok: the handle survived relocation with zero programmer effort")
}
