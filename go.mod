module alaska

go 1.24
