// Command alaska-bench regenerates the paper's overhead results:
// Figure 7 (translation + tracking overhead across the 49-benchmark
// suite) and Figure 8 (the hoisting/tracking ablation on the SPEC subset).
//
// Usage:
//
//	alaska-bench -figure 7        # per-benchmark overhead + geomeans
//	alaska-bench -figure 8        # alaska / notracking / nohoisting
//	alaska-bench -figure 7 -csv   # machine-readable output
//	alaska-bench -codesize        # Q2: static code growth per benchmark
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"alaska/internal/figures"
	"alaska/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("alaska-bench: ")
	figure := flag.Int("figure", 7, "figure to regenerate (7 or 8)")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	codesize := flag.Bool("codesize", false, "report static code growth (Q2) instead of a figure")
	flag.Parse()

	switch {
	case *codesize:
		runCodeSize(*csv)
	case *figure == 7:
		runFigure7(*csv)
	case *figure == 8:
		runFigure8(*csv)
	default:
		log.Fatalf("unknown figure %d (want 7 or 8)", *figure)
	}
}

func runFigure7(csv bool) {
	res, err := figures.Figure7()
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		fmt.Println("benchmark,suite,baseline_cycles,alaska_cycles,overhead_pct,paper_pct")
		for _, r := range res {
			fmt.Printf("%s,%s,%d,%d,%.2f,%.1f\n",
				r.Name, r.Suite, r.BaselineCycles, r.AlaskaCycles, r.Overhead*100, r.PaperOverhead)
		}
		return
	}
	var rows [][]string
	for _, r := range res {
		rows = append(rows, []string{
			r.Name, r.Suite,
			fmt.Sprintf("%d", r.BaselineCycles),
			fmt.Sprintf("%d", r.AlaskaCycles),
			fmt.Sprintf("%+.1f%%", r.Overhead*100),
			fmt.Sprintf("%+.1f%%", r.PaperOverhead),
		})
	}
	if err := stats.Table(os.Stdout, []string{"benchmark", "suite", "baseline", "alaska", "overhead", "paper"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeomean: %+.1f%% (paper: +10%%)   excluding perlbench/gcc: %+.1f%% (paper: +8%%)\n",
		figures.Geomean(res, false)*100, figures.Geomean(res, true)*100)
}

func runFigure8(csv bool) {
	res, err := figures.Figure8()
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		fmt.Println("benchmark,alaska_pct,notracking_pct,nohoisting_pct")
		for _, r := range res {
			fmt.Printf("%s,%.2f,%.2f,%.2f\n", r.Name, r.Alaska*100, r.NoTracking*100, r.NoHoisting*100)
		}
		return
	}
	var rows [][]string
	for _, r := range res {
		rows = append(rows, []string{
			r.Name,
			fmt.Sprintf("%+.1f%%", r.Alaska*100),
			fmt.Sprintf("%+.1f%%", r.NoTracking*100),
			fmt.Sprintf("%+.1f%%", r.NoHoisting*100),
		})
	}
	if err := stats.Table(os.Stdout, []string{"benchmark", "alaska", "notracking", "nohoisting"}, rows); err != nil {
		log.Fatal(err)
	}
}

func runCodeSize(csv bool) {
	rows, gm, err := figures.CodeSize()
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		fmt.Println("benchmark,instrs_before,instrs_after,growth")
		for _, r := range rows {
			fmt.Printf("%s,%d,%d,%.3f\n", r.Name, r.Before, r.After, r.Growth)
		}
		return
	}
	var tab [][]string
	for _, r := range rows {
		tab = append(tab, []string{
			r.Name,
			fmt.Sprintf("%d", r.Before),
			fmt.Sprintf("%d", r.After),
			fmt.Sprintf("%.2fx", r.Growth),
		})
	}
	if err := stats.Table(os.Stdout, []string{"benchmark", "before", "after", "growth"}, tab); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeomean growth: %+.1f%% (paper: ~48%% executable growth)\n", gm*100)
}
