// Command memcached-bench regenerates Figure 12: request latencies of a
// multithreaded memcached-style store under YCSB-A while Anchorage
// relocates ~1 MiB at each stop-the-world pause, swept over pause
// intervals and thread counts.
//
// Usage:
//
//	memcached-bench                                 # default sweep
//	memcached-bench -threads 1,2,4,8,16 -duration 1s
//	memcached-bench -intervals 100ms,200ms,500ms,1s
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"alaska/internal/figures"
	"alaska/internal/stats"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func parseDurations(s string) ([]time.Duration, error) {
	var out []time.Duration
	for _, part := range strings.Split(s, ",") {
		d, err := time.ParseDuration(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("memcached-bench: ")
	threadsFlag := flag.String("threads", "1,2,4,8,16", "comma-separated thread counts")
	intervalsFlag := flag.String("intervals", "100ms,200ms,400ms,600ms,800ms,1s", "comma-separated pause intervals")
	duration := flag.Duration("duration", time.Second, "measurement duration per cell")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	threads, err := parseInts(*threadsFlag)
	if err != nil {
		log.Fatalf("bad -threads: %v", err)
	}
	intervals, err := parseDurations(*intervalsFlag)
	if err != nil {
		log.Fatalf("bad -intervals: %v", err)
	}

	res, err := figures.Figure12(threads, intervals, *duration)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		fmt.Println("threads,config,interval_ms,ops,avg_latency_us,p99_us,max_pause_ms,pauses")
		for _, r := range res {
			kind := "baseline"
			if r.Alaska {
				kind = "alaska"
			}
			fmt.Printf("%d,%s,%.0f,%d,%.2f,%.2f,%.3f,%d\n",
				r.Threads, kind, float64(r.Interval)/1e6, r.Ops,
				float64(r.AvgLatency)/1e3, float64(r.P99)/1e3,
				float64(r.MaxPause)/1e6, r.Pauses)
		}
		return
	}
	var rows [][]string
	for _, r := range res {
		kind := "baseline"
		if r.Alaska {
			kind = fmt.Sprintf("alaska @%v", r.Interval)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", r.Threads),
			kind,
			fmt.Sprintf("%d", r.Ops),
			r.AvgLatency.String(),
			r.P99.String(),
			r.MaxPause.String(),
			fmt.Sprintf("%d", r.Pauses),
		})
	}
	if err := stats.Table(os.Stdout,
		[]string{"threads", "config", "ops", "avg", "p99", "max_pause", "pauses"}, rows); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npaper: ~10% average latency overhead across all configurations, <7% above 500ms intervals,")
	fmt.Println("       average pauses < 2ms, and no correlation between thread count and pause time.")
}
