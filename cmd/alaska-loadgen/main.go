// Command alaska-loadgen drives an alaskad server (or any memcached-
// ASCII-protocol server) with YCSB workload mixes — or a read-modify-
// write/TTL mix — over real TCP connections and reports throughput and
// latency percentiles.
//
// Usage:
//
//	alaska-loadgen -addr localhost:11211 -workload ycsb-a -connections 8 -duration 10s
//	alaska-loadgen -workload ycsb-b -records 50000 -value-size 1024 -csv
//	alaska-loadgen -workload rmw -ttl 1 -connections 4 -duration 5s
//	alaska-loadgen -rate 20000 -warmup 2s -latency-csv lat.csv -duration 30s
//
// Each connection runs on its own goroutine with its own scrambled-
// zipfian generator, mirroring how memcached benchmarks (and the
// paper's Figure 12 harness) spread load across client threads.
//
// The `rmw` workload hammers the commands most exposed to a concurrent
// mover — incr on shared counters, append, gets+cas loops — interleaved
// with expiring sets (-ttl), so the defrag control loop runs against
// mutating, dying data rather than a read-mostly keyspace.
//
// By default the generator is closed-loop: each connection issues its
// next request the moment the previous response lands, so a slowing
// server silently sheds offered load. -rate switches to open-loop fixed
// arrivals: operations are scheduled on a fixed timetable and latency is
// measured from the *intended* start (coordinated-omission-corrected),
// so queueing delay under overload shows up in the tail instead of
// vanishing. -warmup excludes the ramp from the report, and
// -latency-csv emits a per-second latency-over-time series to plot
// against the server's stats (RSS vs latency).
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alaska/internal/rlimit"
	"alaska/internal/server"
	"alaska/internal/stats"
	"alaska/internal/ycsb"
)

// countOpenFDs reports the process's current open-fd count via
// /proc/self/fd, or -1 where that isn't readable (non-Linux).
func countOpenFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

func parseWorkload(s string) (ycsb.Workload, error) {
	switch strings.ToLower(strings.TrimPrefix(strings.ToLower(s), "ycsb-")) {
	case "a":
		return ycsb.WorkloadA, nil
	case "b":
		return ycsb.WorkloadB, nil
	case "c":
		return ycsb.WorkloadC, nil
	case "f":
		return ycsb.WorkloadF, nil
	}
	return 0, fmt.Errorf("unknown workload %q (want ycsb-a|ycsb-b|ycsb-c|ycsb-f|rmw|churn)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("alaska-loadgen: ")
	addr := flag.String("addr", "localhost:11211", "server address")
	workloadFlag := flag.String("workload", "ycsb-a", "mix: ycsb-a|ycsb-b|ycsb-c|ycsb-f|rmw")
	ttl := flag.Int64("ttl", 0, "exptime (seconds) attached to every stored value; 0 = no expiry")
	conns := flag.Int("connections", 8, "concurrent client connections")
	records := flag.Int("records", 10000, "preloaded record count")
	valueSize := flag.Int("value-size", 512, "value payload bytes")
	valueJitter := flag.Float64("value-jitter", 0, "randomize update sizes down to (1-jitter)*value-size; nonzero churns the heap into fragmentation")
	duration := flag.Duration("duration", 5*time.Second, "measured run length")
	warmup := flag.Duration("warmup", 0, "ramp-up excluded from the measured stats")
	rate := flag.Float64("rate", 0, "open-loop target ops/s across all connections (latency measured from intended start); 0 = closed loop")
	latencyCSV := flag.String("latency-csv", "", "write a per-second latency-over-time CSV of the measured window to this file")
	hold := flag.Int("hold", 0, "extra connections opened before the run and held idle (never sending a byte) — exercises -max-conns and -idle-timeout")
	noLoad := flag.Bool("no-load", false, "skip the preload phase and run against whatever the server already holds — measures a warm server, e.g. right after a -persist restart")
	clientTimeout := flag.Duration("client-timeout", 0, "per-op deadline on every worker connection, with reconnect-on-error: a worker that hits a transport fault counts the error and keeps driving instead of dying; 0 = off (first error kills the worker)")
	seed := flag.Int64("seed", 42, "base RNG seed")
	showStats := flag.Bool("server-stats", true, "fetch and print server stats after the run")
	csv := flag.Bool("csv", false, "emit a one-line CSV result instead of the report")
	flag.Parse()

	rmw := strings.EqualFold(*workloadFlag, "rmw")
	churn := strings.EqualFold(*workloadFlag, "churn")
	var w ycsb.Workload
	if !rmw && !churn {
		var err error
		w, err = parseWorkload(*workloadFlag)
		if err != nil {
			log.Fatal(err)
		}
	}
	if *conns < 1 || *records < 1 {
		log.Fatal("-connections and -records must be positive")
	}
	if *valueJitter < 0 || *valueJitter > 1 {
		log.Fatal("-value-jitter must be in [0,1]")
	}

	// Large hold populations need the fds to match: lift the soft
	// NOFILE limit to the hard ceiling before dialing, and fail with a
	// clear message when even that cannot cover the request (plus the
	// worker connections and a little slack for stdio/sockets).
	need := uint64(*hold + *conns + 64)
	if nofile, err := rlimit.RaiseNOFILE(); err != nil {
		if uint64(*hold) > 0 && nofile > 0 && need > nofile {
			log.Fatalf("cannot raise RLIMIT_NOFILE past %d (%v); -hold %d + -connections %d needs ~%d fds — raise the hard limit (ulimit -Hn) and retry",
				nofile, err, *hold, *conns, need)
		}
		log.Printf("warning: could not raise RLIMIT_NOFILE: %v", err)
	} else if nofile > 0 && need > nofile {
		log.Fatalf("RLIMIT_NOFILE hard limit is %d but -hold %d + -connections %d needs ~%d fds — raise the hard limit (ulimit -Hn) and retry",
			nofile, *hold, *conns, need)
	}

	// Peak open-fd sampler: the proof the hold population was really
	// open, not queued behind a dial failure.
	var peakFDs atomic.Int64
	sampleFDs := func() {
		if n := int64(countOpenFDs()); n > peakFDs.Load() {
			peakFDs.Store(n)
		}
	}
	fdSamplerStop := make(chan struct{})
	go func() {
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-fdSamplerStop:
				return
			case <-t.C:
				sampleFDs()
			}
		}
	}()

	// Idle holds: opened before anything else so they are the connections
	// occupying the server's -max-conns slots (and, with -idle-timeout,
	// the ones its reaper kicks). Each blocks in a read until the server
	// closes it or the run ends. Dial failures are counted and reported
	// rather than fatal — a partial hold population is still a valid
	// (smaller) experiment.
	var holdKicked atomic.Int64
	var holdClosing atomic.Bool
	var holdWG sync.WaitGroup
	holdFailed := 0
	holdConns := make([]net.Conn, 0, *hold)
	for i := 0; i < *hold; i++ {
		c, err := net.DialTimeout("tcp", *addr, 5*time.Second)
		if err != nil {
			holdFailed++
			if holdFailed == 1 {
				log.Printf("hold dial: %v (continuing; failures reported in summary)", err)
			}
			continue
		}
		holdConns = append(holdConns, c)
		holdWG.Add(1)
		go func(c net.Conn) {
			defer holdWG.Done()
			if _, err := c.Read(make([]byte, 1)); err != nil && !holdClosing.Load() {
				holdKicked.Add(1) // the server hung up on us
			}
		}(c)
	}
	if *hold > 0 {
		// Let the holds claim their accept slots before the workers dial.
		time.Sleep(300 * time.Millisecond)
		sampleFDs()
	}

	// Load phase: split the keyspace across connections, pipelined with
	// noreply for speed, then a synchronous version round-trip per
	// connection to barrier on completion. The churn workload skips it —
	// filling on miss IS the workload, and a keyspace chosen to dwarf the
	// server's -max-memory would only churn the preload through eviction.
	loadStart := time.Now()
	var wg sync.WaitGroup
	var loadErr atomic.Value
	loadConns := *conns
	if churn || *noLoad {
		loadConns = 0
	}
	for c := 0; c < loadConns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(*addr)
			if err != nil {
				loadErr.Store(err)
				return
			}
			defer cl.Close()
			val := make([]byte, *valueSize)
			for i := range val {
				val[i] = byte(i)
			}
			for i := c; i < *records; i += *conns {
				if err := cl.SetNoreply(ycsb.Key(uint64(i)), 0, val); err != nil {
					loadErr.Store(err)
					return
				}
				if i%256 == 0 {
					if err := cl.Flush(); err != nil {
						loadErr.Store(err)
						return
					}
				}
			}
			if rmw {
				// Counter keyspace for incr/decr: numeric values, no TTL
				// (an expired counter would just read as NOT_FOUND).
				for i := c; i < counterKeys(*records); i += *conns {
					if err := cl.SetNoreply(counterKey(i), 0, []byte("0")); err != nil {
						loadErr.Store(err)
						return
					}
				}
			}
			if _, err := cl.Version(); err != nil { // flush + sync
				loadErr.Store(err)
			}
		}(c)
	}
	wg.Wait()
	if e := loadErr.Load(); e != nil {
		log.Fatalf("load phase: %v", e)
	}
	loadDur := time.Since(loadStart)

	// Run phase. The timeline is start → (warmup) → measureStart →
	// (duration) → deadline: every worker runs the whole span, but only
	// operations *intended* to start inside the measured window are
	// recorded.
	recorders := make([]*stats.LatencyRecorder, *conns)
	var totalOps, errOps atomic.Int64
	var hits, misses atomic.Int64
	start := time.Now()
	measureStart := start.Add(*warmup)
	deadline := measureStart.Add(*duration)
	// Per-second latency-over-time buckets (LatencyRecorder is safe for
	// concurrent use, so the workers share them).
	var buckets []*stats.LatencyRecorder
	if *latencyCSV != "" {
		buckets = make([]*stats.LatencyRecorder, int(duration.Seconds())+1)
		for i := range buckets {
			buckets[i] = stats.NewLatencyRecorder()
		}
	}
	// interval is the open-loop arrival spacing per connection.
	var interval time.Duration
	if *rate > 0 {
		interval = time.Duration(float64(*conns) / *rate * float64(time.Second))
		if interval <= 0 {
			log.Fatal("-rate too high for -connections")
		}
	}
	// With -client-timeout, workers survive a server fault window: ops
	// are deadline-bounded, transport errors redial with backoff, and the
	// worker counts the failure and keeps driving instead of dying — so a
	// chaos run measures the server through the fault, not the silence
	// after the first error.
	resilient := *clientTimeout > 0
	for c := 0; c < *conns; c++ {
		recorders[c] = stats.NewLatencyRecorder()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(*addr)
			if err != nil {
				errOps.Add(1)
				return
			}
			defer cl.Close()
			if resilient {
				cl.SetOpTimeout(*clientTimeout)
				cl.EnableReconnect(5, 50*time.Millisecond, time.Second)
			}
			val := make([]byte, *valueSize)
			rec := recorders[c]
			rng := rand.New(rand.NewSource(*seed + 1000 + int64(c)))
			size := func(n int) int {
				if *valueJitter == 0 {
					return n
				}
				s := n - int(*valueJitter*rng.Float64()*float64(n))
				if s < 1 {
					s = 1
				}
				return s
			}
			// pace returns the op's intended start. Closed loop: now.
			// Open loop: the next slot of this connection's fixed
			// timetable (staggered across connections), sleeping until it
			// arrives — and never sleeping to catch up when the server
			// has fallen behind, so queueing delay accrues to latency.
			next := start.Add(time.Duration(c) * interval / time.Duration(*conns))
			pace := func() time.Time {
				if interval <= 0 {
					return time.Now()
				}
				intended := next
				next = next.Add(interval)
				if d := time.Until(intended); d > 0 {
					time.Sleep(d)
				}
				return intended
			}
			// finish records one completed op against its intended start
			// if that start fell inside the measured window.
			finish := func(intended time.Time) {
				end := time.Now()
				if intended.Before(measureStart) {
					return
				}
				lat := end.Sub(intended)
				rec.Record(lat)
				totalOps.Add(1)
				// Ops completing after the window still count in the
				// merged totals above but are dropped from the per-second
				// series — clamping them into the final row would inflate
				// its load and tail.
				if buckets != nil {
					if idx := int(end.Sub(measureStart) / time.Second); idx >= 0 && idx < len(buckets) {
						buckets[idx].Record(lat)
					}
				}
			}
			if churn {
				// Cache-fill churn: zipfian gets over a keyspace sized well
				// past the server's memory ceiling, set-on-miss. Steady
				// state is a cache running flat against -max-memory, so the
				// hit rate measures how much useful working set the server
				// keeps per byte of heap.
				gen, err := ycsb.NewGenerator(ycsb.WorkloadC, *records, *valueSize, *seed+int64(c)+1)
				if err != nil {
					errOps.Add(1)
					return
				}
				for time.Now().Before(deadline) {
					key := gen.Next().Key
					opStart := pace()
					_, _, ok, err := cl.Get(key)
					if err != nil {
						errOps.Add(1)
						if resilient {
							continue
						}
						return
					}
					if ok {
						hits.Add(1)
					} else {
						misses.Add(1)
						if err := cl.SetEx(key, 0, *ttl, val[:size(*valueSize)]); err != nil {
							errOps.Add(1)
							if resilient {
								continue
							}
							return
						}
					}
					finish(opStart)
				}
				return
			}
			if rmw {
				// RMW/TTL mix: every stored value carries -ttl, counters
				// absorb incrs, and gets+cas loops contend for the same
				// keys — read-modify-write under live defrag, the access
				// pattern the paper's pause-free claim has to survive.
				for time.Now().Before(deadline) {
					key := ycsb.Key(uint64(rng.Intn(*records)))
					opStart := pace()
					var opErr error
					switch r := rng.Intn(100); {
					case r < 35:
						_, _, _, opErr = cl.Get(key)
					case r < 60:
						opErr = cl.SetEx(key, 0, *ttl, val[:size(*valueSize)])
					case r < 75:
						_, _, opErr = cl.Incr(counterKey(rng.Intn(counterKeys(*records))), 1)
					case r < 87:
						// NOT_STORED (key expired/evicted) is a valid outcome.
						_, opErr = cl.Append(key, []byte("+x"))
					default:
						// One optimistic cas round; EXISTS/NOT_FOUND are
						// valid outcomes under contention and expiry.
						if v, _, casID, ok, gerr := cl.Gets(key); gerr != nil {
							opErr = gerr
						} else if ok {
							_, opErr = cl.Cas(key, 0, *ttl, casID, append(v[:len(v):len(v)], '!'))
						}
					}
					if opErr != nil {
						errOps.Add(1)
						if resilient {
							continue
						}
						return
					}
					finish(opStart)
				}
				return
			}
			gen, err := ycsb.NewGenerator(w, *records, *valueSize, *seed+int64(c)+1)
			if err != nil {
				errOps.Add(1)
				return
			}
			for time.Now().Before(deadline) {
				op := gen.Next()
				opStart := pace()
				var opErr error
				switch op.Type {
				case ycsb.Read:
					var ok bool
					_, _, ok, opErr = cl.Get(op.Key)
					if opErr == nil {
						if ok {
							hits.Add(1)
						} else {
							misses.Add(1)
						}
					}
				case ycsb.ReadModifyWrite:
					if _, _, _, opErr = cl.Get(op.Key); opErr == nil {
						opErr = cl.SetEx(op.Key, 0, *ttl, val[:size(op.ValueSize)])
					}
				default: // Update / Insert
					opErr = cl.SetEx(op.Key, 0, *ttl, val[:size(op.ValueSize)])
				}
				if opErr != nil {
					errOps.Add(1)
					if resilient {
						continue
					}
					return
				}
				finish(opStart)
			}
		}(c)
	}
	wg.Wait()

	// Final fd sample while everything is still open, then stop the
	// sampler and release the idle holds (any still open were not
	// kicked).
	sampleFDs()
	close(fdSamplerStop)
	holdClosing.Store(true)
	for _, c := range holdConns {
		_ = c.Close()
	}
	holdWG.Wait()

	if *latencyCSV != "" {
		if err := writeLatencyCSV(*latencyCSV, buckets); err != nil {
			log.Fatalf("latency csv: %v", err)
		}
	}

	merged := stats.NewLatencyRecorder()
	for _, r := range recorders {
		merged.Merge(r)
	}
	ops := totalOps.Load()
	throughput := float64(ops) / duration.Seconds()

	if *csv {
		fmt.Println("workload,connections,records,value_bytes,duration_s,ops,ops_per_s,errors,mean_us,p50_us,p99_us,p999_us,max_us")
		fmt.Printf("%s,%d,%d,%d,%.2f,%d,%.0f,%d,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			*workloadFlag, *conns, *records, *valueSize, duration.Seconds(), ops, throughput, errOps.Load(),
			us(merged.Mean()), us(merged.Percentile(50)), us(merged.Percentile(99)),
			us(merged.Percentile(99.9)), us(merged.Max()))
	} else {
		fmt.Printf("workload=%s connections=%d records=%d value=%dB\n",
			strings.ToUpper(*workloadFlag), *conns, *records, *valueSize)
		if churn {
			fmt.Println("load: skipped (churn fills on miss)")
		} else if *noLoad {
			fmt.Println("load: skipped (-no-load: measuring the server's existing contents)")
		} else {
			fmt.Printf("load: %d records in %v\n", *records, loadDur.Round(time.Millisecond))
		}
		if *rate > 0 {
			fmt.Printf("open-loop: target %.0f ops/s, warmup %v\n", *rate, *warmup)
		}
		fmt.Printf("run: %d ops in %v = %.0f ops/s, errors: %d\n",
			ops, *duration, throughput, errOps.Load())
		fmt.Printf("latency: mean=%v p50=%v p99=%v p999=%v max=%v\n",
			merged.Mean(), merged.Percentile(50), merged.Percentile(99),
			merged.Percentile(99.9), merged.Max())
		// Read hit rate for the YCSB mixes: with -no-load after a -persist
		// restart, this is the warm-restart figure of merit (the churn
		// workload prints its own fill-rate line below instead).
		if h, m := hits.Load(), misses.Load(); !churn && h+m > 0 {
			fmt.Printf("reads: hits=%d misses=%d hit_rate=%.4f\n", h, m, float64(h)/float64(h+m))
		}
		if *hold > 0 {
			fmt.Printf("idle holds: %d opened, %d failed, %d kicked by server\n",
				len(holdConns), holdFailed, holdKicked.Load())
		}
		if peak := peakFDs.Load(); peak > 0 {
			fmt.Printf("peak open fds: %d\n", peak)
		}
	}

	if *showStats || churn {
		cl, err := server.Dial(*addr)
		if err != nil {
			log.Fatalf("stats fetch: %v", err)
		}
		st, err := cl.Stats()
		cl.Close()
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		if churn && !*csv {
			// The figure of merit for a capped cache: how much hit rate
			// the server buys per MiB of real memory. A defragmenting
			// backend holds more live values in the same RSS, so it scores
			// higher at an identical -max-memory.
			h, m := hits.Load(), misses.Load()
			hitRate := 0.0
			if h+m > 0 {
				hitRate = float64(h) / float64(h+m)
			}
			fmt.Printf("churn: hits=%d misses=%d hit_rate=%.4f\n", h, m, hitRate)
			if rss, perr := strconv.ParseUint(st["rss_bytes"], 10, 64); perr == nil && rss > 0 {
				fmt.Printf("churn: rss_bytes=%d hit_rate_per_rss_mib=%.6f\n",
					rss, hitRate/(float64(rss)/(1<<20)))
			}
		}
		if *showStats {
			keys := make([]string, 0, len(st))
			for k := range st {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Println("server stats after run:")
			for _, k := range keys {
				fmt.Printf("  %s %s\n", k, st[k])
			}
		}
	}
	if errOps.Load() > 0 {
		os.Exit(1)
	}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// writeLatencyCSV emits the per-second latency-over-time series: one row
// per elapsed second of the measured window, ready to join against the
// server's stats for RSS-vs-latency plots.
func writeLatencyCSV(path string, buckets []*stats.LatencyRecorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "elapsed_s,ops,p50_us,p99_us,p999_us,max_us"); err != nil {
		return err
	}
	for i, b := range buckets {
		if _, err := fmt.Fprintf(f, "%d,%d,%.1f,%.1f,%.1f,%.1f\n",
			i, b.Count(), us(b.Percentile(50)), us(b.Percentile(99)),
			us(b.Percentile(99.9)), us(b.Max())); err != nil {
			return err
		}
	}
	return nil
}

// counterKeys sizes the rmw workload's shared-counter keyspace: a tenth
// of the record count, at least one, so counters see real incr
// contention.
func counterKeys(records int) int {
	n := records / 10
	if n < 1 {
		n = 1
	}
	return n
}

func counterKey(i int) string { return ycsb.FixedKey("ctr", uint64(i), 8) }
