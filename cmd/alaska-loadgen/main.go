// Command alaska-loadgen drives an alaskad server (or any memcached-
// ASCII-protocol server) with YCSB workload mixes over real TCP
// connections and reports throughput and latency percentiles.
//
// Usage:
//
//	alaska-loadgen -addr localhost:11211 -workload ycsb-a -connections 8 -duration 10s
//	alaska-loadgen -workload ycsb-b -records 50000 -value-size 1024 -csv
//
// Each connection runs on its own goroutine with its own scrambled-
// zipfian generator, mirroring how memcached benchmarks (and the
// paper's Figure 12 harness) spread load across client threads.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alaska/internal/server"
	"alaska/internal/stats"
	"alaska/internal/ycsb"
)

func parseWorkload(s string) (ycsb.Workload, error) {
	switch strings.ToLower(strings.TrimPrefix(strings.ToLower(s), "ycsb-")) {
	case "a":
		return ycsb.WorkloadA, nil
	case "b":
		return ycsb.WorkloadB, nil
	case "c":
		return ycsb.WorkloadC, nil
	case "f":
		return ycsb.WorkloadF, nil
	}
	return 0, fmt.Errorf("unknown workload %q (want ycsb-a|ycsb-b|ycsb-c|ycsb-f)", s)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("alaska-loadgen: ")
	addr := flag.String("addr", "localhost:11211", "server address")
	workloadFlag := flag.String("workload", "ycsb-a", "YCSB mix: ycsb-a|ycsb-b|ycsb-c|ycsb-f")
	conns := flag.Int("connections", 8, "concurrent client connections")
	records := flag.Int("records", 10000, "preloaded record count")
	valueSize := flag.Int("value-size", 512, "value payload bytes")
	valueJitter := flag.Float64("value-jitter", 0, "randomize update sizes down to (1-jitter)*value-size; nonzero churns the heap into fragmentation")
	duration := flag.Duration("duration", 5*time.Second, "measured run length")
	seed := flag.Int64("seed", 42, "base RNG seed")
	showStats := flag.Bool("server-stats", true, "fetch and print server stats after the run")
	csv := flag.Bool("csv", false, "emit a one-line CSV result instead of the report")
	flag.Parse()

	w, err := parseWorkload(*workloadFlag)
	if err != nil {
		log.Fatal(err)
	}
	if *conns < 1 || *records < 1 {
		log.Fatal("-connections and -records must be positive")
	}
	if *valueJitter < 0 || *valueJitter > 1 {
		log.Fatal("-value-jitter must be in [0,1]")
	}

	// Load phase: split the keyspace across connections, pipelined with
	// noreply for speed, then a synchronous version round-trip per
	// connection to barrier on completion.
	loadStart := time.Now()
	var wg sync.WaitGroup
	var loadErr atomic.Value
	for c := 0; c < *conns; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(*addr)
			if err != nil {
				loadErr.Store(err)
				return
			}
			defer cl.Close()
			val := make([]byte, *valueSize)
			for i := range val {
				val[i] = byte(i)
			}
			for i := c; i < *records; i += *conns {
				if err := cl.SetNoreply(ycsb.Key(uint64(i)), 0, val); err != nil {
					loadErr.Store(err)
					return
				}
				if i%256 == 0 {
					if err := cl.Flush(); err != nil {
						loadErr.Store(err)
						return
					}
				}
			}
			if _, err := cl.Version(); err != nil { // flush + sync
				loadErr.Store(err)
			}
		}(c)
	}
	wg.Wait()
	if e := loadErr.Load(); e != nil {
		log.Fatalf("load phase: %v", e)
	}
	loadDur := time.Since(loadStart)

	// Run phase.
	recorders := make([]*stats.LatencyRecorder, *conns)
	var totalOps, errOps atomic.Int64
	deadline := time.Now().Add(*duration)
	for c := 0; c < *conns; c++ {
		recorders[c] = stats.NewLatencyRecorder()
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(*addr)
			if err != nil {
				errOps.Add(1)
				return
			}
			defer cl.Close()
			gen, err := ycsb.NewGenerator(w, *records, *valueSize, *seed+int64(c)+1)
			if err != nil {
				errOps.Add(1)
				return
			}
			val := make([]byte, *valueSize)
			rec := recorders[c]
			rng := rand.New(rand.NewSource(*seed + 1000 + int64(c)))
			size := func(n int) int {
				if *valueJitter == 0 {
					return n
				}
				s := n - int(*valueJitter*rng.Float64()*float64(n))
				if s < 1 {
					s = 1
				}
				return s
			}
			for time.Now().Before(deadline) {
				op := gen.Next()
				start := time.Now()
				var opErr error
				switch op.Type {
				case ycsb.Read:
					_, _, _, opErr = cl.Get(op.Key)
				case ycsb.ReadModifyWrite:
					if _, _, _, opErr = cl.Get(op.Key); opErr == nil {
						opErr = cl.Set(op.Key, 0, val[:size(op.ValueSize)])
					}
				default: // Update / Insert
					opErr = cl.Set(op.Key, 0, val[:size(op.ValueSize)])
				}
				if opErr != nil {
					errOps.Add(1)
					return
				}
				rec.Record(time.Since(start))
				totalOps.Add(1)
			}
		}(c)
	}
	wg.Wait()

	merged := stats.NewLatencyRecorder()
	for _, r := range recorders {
		merged.Merge(r)
	}
	ops := totalOps.Load()
	throughput := float64(ops) / duration.Seconds()

	if *csv {
		fmt.Println("workload,connections,records,value_bytes,duration_s,ops,ops_per_s,errors,mean_us,p50_us,p99_us,p999_us,max_us")
		fmt.Printf("%s,%d,%d,%d,%.2f,%d,%.0f,%d,%.1f,%.1f,%.1f,%.1f,%.1f\n",
			*workloadFlag, *conns, *records, *valueSize, duration.Seconds(), ops, throughput, errOps.Load(),
			us(merged.Mean()), us(merged.Percentile(50)), us(merged.Percentile(99)),
			us(merged.Percentile(99.9)), us(merged.Max()))
	} else {
		fmt.Printf("workload=%s connections=%d records=%d value=%dB\n",
			strings.ToUpper(*workloadFlag), *conns, *records, *valueSize)
		fmt.Printf("load: %d records in %v\n", *records, loadDur.Round(time.Millisecond))
		fmt.Printf("run: %d ops in %v = %.0f ops/s, errors: %d\n",
			ops, *duration, throughput, errOps.Load())
		fmt.Printf("latency: mean=%v p50=%v p99=%v p999=%v max=%v\n",
			merged.Mean(), merged.Percentile(50), merged.Percentile(99),
			merged.Percentile(99.9), merged.Max())
	}

	if *showStats {
		cl, err := server.Dial(*addr)
		if err != nil {
			log.Fatalf("stats fetch: %v", err)
		}
		st, err := cl.Stats()
		cl.Close()
		if err != nil {
			log.Fatalf("stats: %v", err)
		}
		keys := make([]string, 0, len(st))
		for k := range st {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Println("server stats after run:")
		for _, k := range keys {
			fmt.Printf("  %s %s\n", k, st[k])
		}
	}
	if errOps.Load() > 0 {
		os.Exit(1)
	}
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
