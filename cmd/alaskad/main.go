// Command alaskad is a network-facing memcached-protocol server on the
// Alaska heap: the paper's "production-scale system serving heavy
// traffic" claim made concrete. It speaks the full memcached ASCII
// storage surface (get/gets/gat/gats, set/add/replace/cas/append/
// prepend, incr/decr, delete/touch, stats/version/quit) with enforced
// TTLs over TCP, serves every value out of a pluggable heap backend,
// and — on the Anchorage backend — defragments the heap under live
// traffic with both the §4.3 stop-the-world control loop and the §7
// pause-free concurrent pass.
//
// Usage:
//
//	alaskad -addr :11211 -backend anchorage
//	alaskad -backend malloc -shards 32 -max-memory 256MiB
//
// Drive it with alaska-loadgen, or telnet and type memcached commands.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/fault"
	"alaska/internal/health"
	"alaska/internal/kv"
	"alaska/internal/logx"
	"alaska/internal/rlimit"
	"alaska/internal/rt"
	"alaska/internal/server"
	"alaska/internal/wal"
)

const version = "0.3.0-alaska"

// parseBytes accepts "1048576", "1MiB", "256KiB", "2GiB".
func parseBytes(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	mult := uint64(1)
	for suffix, m := range map[string]uint64{"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func main() {
	addr := flag.String("addr", ":11211", "TCP listen address")
	adminAddr := flag.String("admin-addr", "", "admin HTTP listen address serving /metrics, /healthz, /readyz, /debug/pprof, /debug/vars, /debug/slowops; empty = disabled")
	backendName := flag.String("backend", "anchorage", "heap backend: malloc|mesh|anchorage")
	shards := flag.Int("shards", 32, "store shard count")
	maxMemory := flag.String("max-memory", "0", "total value-memory cap with LRU eviction (bytes, KiB/MiB/GiB suffixes; 0 = unlimited)")
	maxValue := flag.String("max-value-size", "1MiB", "largest accepted value")
	maxConns := flag.Int("max-conns", 0, "max concurrent connections (memcached -c): at the cap the accept loop pauses until a disconnect; 0 = unlimited")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap connections with no completed command for this long; 0 = never")
	writeTimeout := flag.Duration("write-timeout", 5*time.Second, "deadline per socket write; a client that stops reading its responses is disconnected; 0 = none")
	replyBacklog := flag.String("max-reply-backlog", "64MiB", "reply bytes buffered for a non-reading client before disconnect")
	padDecr := flag.Bool("space-padded-decr", false, "memcached-classic decr compatibility: right-pad shrinking decr results with spaces to the old value length")
	maintain := flag.Duration("maintain-interval", 50*time.Millisecond, "background maintenance tick")
	fragHigh := flag.Float64("defrag-frag-high", 1.3, "fragmentation threshold for pause-free concurrent passes (anchorage)")
	budget := flag.String("defrag-budget", "1MiB", "bytes moved per concurrent defrag pass")
	seed := flag.Int64("seed", 1, "seed for the mesh backend's probe randomness")
	persist := flag.Bool("persist", false, "enable the append-only pack log: every mutation is batch-appended to -data-dir and replayed at boot for a warm restart")
	dataDir := flag.String("data-dir", "", "pack-log directory (required with -persist)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "pack-log batch/fsync window: a hard kill loses at most this much acknowledged traffic")
	faultScript := flag.String("fault-script", "", "DEV ONLY: inject scripted pack-log I/O faults, e.g. \"sync:after=40:times=6:err=eio\" (requires -persist; see internal/fault)")
	slowOp := flag.Duration("slow-op-threshold", 10*time.Millisecond, "record commands slower than this in the slow-op ring (stats slow, /debug/slowops); negative = disabled")
	connModel := flag.String("conn-model", "auto", "connection architecture: auto|event|goroutine (auto = epoll readiness poller on Linux, goroutine-per-connection elsewhere)")
	workers := flag.Int("conn-workers", 0, "event-model worker pool size; 0 = 2 x GOMAXPROCS")
	verbose := flag.Int("verbose", 0, "log verbosity: 0 errors, 1 lifecycle, 2+ per-connection churn (the wire `verbosity` command changes it at runtime)")
	noInstr := flag.Bool("disable-instrumentation", false, "turn off per-opcode histograms, byte counters, and the slow-op ring (for A/B measurement; the plane is allocation-free, so leave it on)")
	flag.Parse()

	logLevel := logx.LevelError
	switch {
	case *verbose == 1:
		logLevel = logx.LevelInfo
	case *verbose >= 2:
		logLevel = logx.LevelDebug
	}
	logger := logx.New(os.Stderr, "alaskad: ", logLevel)
	fatalf := func(format string, args ...any) {
		logger.Errorf(format, args...)
		os.Exit(1)
	}

	maxMem, err := parseBytes(*maxMemory)
	if err != nil {
		fatalf("bad -max-memory: %v", err)
	}
	maxVal, err := parseBytes(*maxValue)
	if err != nil {
		fatalf("bad -max-value-size: %v", err)
	}
	defragBudget, err := parseBytes(*budget)
	if err != nil {
		fatalf("bad -defrag-budget: %v", err)
	}
	maxBacklog, err := parseBytes(*replyBacklog)
	if err != nil {
		fatalf("bad -max-reply-backlog: %v", err)
	}
	if *shards < 1 {
		fatalf("-shards must be >= 1")
	}
	if maxMem > 0 && maxMem < maxVal {
		fatalf("-max-memory (%s) must be at least -max-value-size (%s): a cache that cannot hold its largest value rejects every store of that size", *maxMemory, *maxValue)
	}
	if *faultScript != "" && !*persist {
		fatalf("-fault-script injects pack-log I/O faults and requires -persist")
	}

	var backend kv.Backend
	switch *backendName {
	case "malloc":
		backend = kv.NewMallocBackend()
	case "mesh":
		backend = kv.NewMeshBackend(*seed)
	case "anchorage":
		// CountedPins makes every connection's pins visible to the
		// pause-free mover — the §7 requirement for running
		// ConcurrentDefragPass concurrently with writing clients.
		ab, err := kv.NewAnchorageBackend(anchorage.DefaultConfig(), rt.WithPinMode(rt.CountedPins))
		if err != nil {
			fatalf("anchorage backend: %v", err)
		}
		backend = ab
	default:
		fatalf("unknown -backend %q (want malloc|mesh|anchorage)", *backendName)
	}

	// The ceiling is store-wide, memcached -m style: the shards share one
	// budget, so hot shards can use room cold shards don't need (the old
	// per-shard maxMem/shards split also truncated to 0 when the cap was
	// smaller than the shard count).
	store := kv.NewShardedStore(backend, *shards, maxMem)

	// Readiness: the registry tracks boot (booting → replaying → ok) and
	// then follows the subsystem checks the server registers (WAL state,
	// accept-gate saturation). Served as /readyz on the admin plane.
	healthReg := health.New()

	// Persistence: open the pack log, replay it into the store (warm
	// restart), then start the writer and attach the mutation hooks —
	// strictly in that order, so replay itself is never re-logged.
	var wlog *wal.Log
	if *persist || *dataDir != "" {
		if !*persist || *dataDir == "" {
			fatalf("-persist and -data-dir must be used together")
		}
		wopt := wal.Options{
			Dir:           *dataDir,
			FsyncInterval: *fsyncInterval,
			Logger:        logger,
		}
		if *faultScript != "" {
			rules, err := fault.ParseScript(*faultScript)
			if err != nil {
				fatalf("bad -fault-script: %v", err)
			}
			wopt.FS = fault.NewScriptFS(nil, rules...)
			fmt.Fprintf(os.Stderr, "alaskad: WARNING: -fault-script is armed (%s) — pack-log I/O WILL fail on schedule; chaos/dev use only\n", *faultScript)
		}
		var err error
		wlog, err = wal.Open(wopt)
		if err != nil {
			fatalf("wal open: %v", err)
		}
		healthReg.StartReplay()
		rsess := store.NewSession()
		replayStart := time.Now()
		rs, err := wlog.Replay(store, rsess)
		_ = rsess.Close()
		if err != nil {
			fatalf("wal replay: %v", err)
		}
		if err := wlog.Start(store); err != nil {
			fatalf("wal start: %v", err)
		}
		store.SetMutationLog(wlog)
		fmt.Fprintf(os.Stderr, "alaskad: warm restart: replayed %d records (%d sets, %d deletes, %d live items) from %s in %v; torn=%d crc_errors=%d\n",
			rs.Records, rs.Sets, rs.Deletes, store.Len(), *dataDir, time.Since(replayStart).Round(time.Millisecond), rs.TornRecords, rs.CrcErrors)
	}

	srv := server.New(store, server.Config{
		Addr:                   *addr,
		MaxValueSize:           int(maxVal),
		MaintainInterval:       *maintain,
		DefragFragHigh:         *fragHigh,
		DefragBudget:           defragBudget,
		Version:                version + "-" + *backendName,
		MaxConns:               *maxConns,
		IdleTimeout:            *idleTimeout,
		WriteTimeout:           *writeTimeout,
		MaxReplyBacklog:        int(maxBacklog),
		SpacePaddedDecr:        *padDecr,
		ConnModel:              *connModel,
		Workers:                *workers,
		SlowOpThreshold:        *slowOp,
		Logger:                 logger,
		DisableInstrumentation: *noInstr,
		WAL:                    wlog,
		Health:                 healthReg,
	})
	// A server built to park 100k sockets should not die at a 1024-fd
	// default soft limit: lift NOFILE to the hard ceiling up front.
	if nofile, err := rlimit.RaiseNOFILE(); err != nil {
		logger.Errorf("could not raise RLIMIT_NOFILE (still %d fds): %v", nofile, err)
	} else if nofile > 0 {
		logger.Infof("RLIMIT_NOFILE soft limit now %d", nofile)
	}
	if err := srv.Listen(); err != nil {
		fatalf("listen: %v", err)
	}
	// The startup line goes to stderr unconditionally (not through the
	// leveled logger): scripted runs resolve ":0" addresses from it, and
	// it is the one-line proof the process came up.
	fmt.Fprintf(os.Stderr, "alaskad: serving memcached protocol on %s (backend=%s shards=%d max-memory=%s conn-model=%s)\n",
		srv.Addr(), backend.Name(), *shards, *maxMemory, srv.ConnModel())

	// The admin plane listens on its own socket so operators can firewall
	// it independently and scrape storms never occupy data-plane
	// connection slots.
	if *adminAddr != "" {
		aln, err := net.Listen("tcp", *adminAddr)
		if err != nil {
			fatalf("admin listen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "alaskad: admin endpoint on http://%s (/metrics /healthz /readyz /debug/pprof /debug/vars /debug/slowops)\n", aln.Addr())
		// Owned by the server: Shutdown drains in-flight scrapes and
		// releases the port instead of leaking the listener.
		srv.AttachAdmin(aln)
	}

	// Boot is complete: listeners are up and replay (if any) finished.
	// /readyz now follows the live subsystem checks.
	healthReg.Ready()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		logger.Infof("received %v, draining connections", s)
		_ = srv.Shutdown(5 * time.Second)
	}()

	if err := srv.Serve(); err != nil {
		fatalf("serve: %v", err)
	}
	// Print a final stats block so a scripted run (CI smoke test) can
	// check the server's own view of the session.
	for _, l := range srv.StatsSnapshot() {
		fmt.Printf("STAT %s %s\n", l.Name, l.Value)
	}
}
