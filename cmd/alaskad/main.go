// Command alaskad is a network-facing memcached-protocol server on the
// Alaska heap: the paper's "production-scale system serving heavy
// traffic" claim made concrete. It speaks the full memcached ASCII
// storage surface (get/gets/gat/gats, set/add/replace/cas/append/
// prepend, incr/decr, delete/touch, stats/version/quit) with enforced
// TTLs over TCP, serves every value out of a pluggable heap backend,
// and — on the Anchorage backend — defragments the heap under live
// traffic with both the §4.3 stop-the-world control loop and the §7
// pause-free concurrent pass.
//
// Usage:
//
//	alaskad -addr :11211 -backend anchorage
//	alaskad -backend malloc -shards 32 -max-memory 256MiB
//
// Drive it with alaska-loadgen, or telnet and type memcached commands.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
	"alaska/internal/server"
)

const version = "0.3.0-alaska"

// parseBytes accepts "1048576", "1MiB", "256KiB", "2GiB".
func parseBytes(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	mult := uint64(1)
	for suffix, m := range map[string]uint64{"KiB": 1 << 10, "MiB": 1 << 20, "GiB": 1 << 30} {
		if strings.HasSuffix(s, suffix) {
			mult = m
			s = strings.TrimSuffix(s, suffix)
			break
		}
	}
	v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, err
	}
	return v * mult, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("alaskad: ")
	addr := flag.String("addr", ":11211", "TCP listen address")
	backendName := flag.String("backend", "anchorage", "heap backend: malloc|mesh|anchorage")
	shards := flag.Int("shards", 32, "store shard count")
	maxMemory := flag.String("max-memory", "0", "total value-memory cap with LRU eviction (bytes, KiB/MiB/GiB suffixes; 0 = unlimited)")
	maxValue := flag.String("max-value-size", "1MiB", "largest accepted value")
	maxConns := flag.Int("max-conns", 0, "max concurrent connections (memcached -c): at the cap the accept loop pauses until a disconnect; 0 = unlimited")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap connections with no completed command for this long; 0 = never")
	writeTimeout := flag.Duration("write-timeout", 5*time.Second, "deadline per socket write; a client that stops reading its responses is disconnected; 0 = none")
	replyBacklog := flag.String("max-reply-backlog", "64MiB", "reply bytes buffered for a non-reading client before disconnect")
	padDecr := flag.Bool("space-padded-decr", false, "memcached-classic decr compatibility: right-pad shrinking decr results with spaces to the old value length")
	maintain := flag.Duration("maintain-interval", 50*time.Millisecond, "background maintenance tick")
	fragHigh := flag.Float64("defrag-frag-high", 1.3, "fragmentation threshold for pause-free concurrent passes (anchorage)")
	budget := flag.String("defrag-budget", "1MiB", "bytes moved per concurrent defrag pass")
	seed := flag.Int64("seed", 1, "seed for the mesh backend's probe randomness")
	flag.Parse()

	maxMem, err := parseBytes(*maxMemory)
	if err != nil {
		log.Fatalf("bad -max-memory: %v", err)
	}
	maxVal, err := parseBytes(*maxValue)
	if err != nil {
		log.Fatalf("bad -max-value-size: %v", err)
	}
	defragBudget, err := parseBytes(*budget)
	if err != nil {
		log.Fatalf("bad -defrag-budget: %v", err)
	}
	maxBacklog, err := parseBytes(*replyBacklog)
	if err != nil {
		log.Fatalf("bad -max-reply-backlog: %v", err)
	}
	if *shards < 1 {
		log.Fatalf("-shards must be >= 1")
	}
	if maxMem > 0 && maxMem < maxVal {
		log.Fatalf("-max-memory (%s) must be at least -max-value-size (%s): a cache that cannot hold its largest value rejects every store of that size", *maxMemory, *maxValue)
	}

	var backend kv.Backend
	switch *backendName {
	case "malloc":
		backend = kv.NewMallocBackend()
	case "mesh":
		backend = kv.NewMeshBackend(*seed)
	case "anchorage":
		// CountedPins makes every connection's pins visible to the
		// pause-free mover — the §7 requirement for running
		// ConcurrentDefragPass concurrently with writing clients.
		ab, err := kv.NewAnchorageBackend(anchorage.DefaultConfig(), rt.WithPinMode(rt.CountedPins))
		if err != nil {
			log.Fatalf("anchorage backend: %v", err)
		}
		backend = ab
	default:
		log.Fatalf("unknown -backend %q (want malloc|mesh|anchorage)", *backendName)
	}

	// The ceiling is store-wide, memcached -m style: the shards share one
	// budget, so hot shards can use room cold shards don't need (the old
	// per-shard maxMem/shards split also truncated to 0 when the cap was
	// smaller than the shard count).
	store := kv.NewShardedStore(backend, *shards, maxMem)
	srv := server.New(store, server.Config{
		Addr:             *addr,
		MaxValueSize:     int(maxVal),
		MaintainInterval: *maintain,
		DefragFragHigh:   *fragHigh,
		DefragBudget:     defragBudget,
		Version:          version + "-" + *backendName,
		MaxConns:         *maxConns,
		IdleTimeout:      *idleTimeout,
		WriteTimeout:     *writeTimeout,
		MaxReplyBacklog:  int(maxBacklog),
		SpacePaddedDecr:  *padDecr,
	})
	if err := srv.Listen(); err != nil {
		log.Fatalf("listen: %v", err)
	}
	log.Printf("serving memcached protocol on %s (backend=%s shards=%d max-memory=%s)",
		srv.Addr(), backend.Name(), *shards, *maxMemory)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sig
		log.Printf("received %v, draining connections", s)
		_ = srv.Shutdown(5 * time.Second)
	}()

	if err := srv.Serve(); err != nil {
		log.Fatalf("serve: %v", err)
	}
	// Print a final stats block so a scripted run (CI smoke test) can
	// check the server's own view of the session.
	for _, l := range srv.StatsSnapshot() {
		fmt.Printf("STAT %s %s\n", l.Name, l.Value)
	}
}
