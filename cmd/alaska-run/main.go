// Command alaska-run compiles and executes a single modelled benchmark
// under both the baseline and the Alaska configuration, reporting the
// transformation statistics and the cycle-count overhead — a one-benchmark
// microscope on what `make CC=alaska` does to a program.
//
// Usage:
//
//	alaska-run -bench mcf            # run one benchmark, print overhead
//	alaska-run -bench mcf -ir        # also dump the transformed IR
//	alaska-run -list                 # list available benchmarks
//	alaska-run -bench lbm -nohoist   # disable the hoisting optimization
//	alaska-run -bench lbm -notrack   # disable pin tracking
package main

import (
	"flag"
	"fmt"
	"log"

	"alaska/internal/compiler"
	"alaska/internal/vm"
	"alaska/internal/workloads"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("alaska-run: ")
	bench := flag.String("bench", "", "benchmark name (see -list)")
	list := flag.Bool("list", false, "list available benchmarks")
	dumpIR := flag.Bool("ir", false, "dump the transformed IR")
	noHoist := flag.Bool("nohoist", false, "disable translation hoisting")
	noTrack := flag.Bool("notrack", false, "disable pin tracking")
	flag.Parse()

	if *list {
		for _, b := range workloads.All() {
			note := ""
			if b.StrictAliasingViolation {
				note = " (strict-aliasing violator: hoisting forced off)"
			}
			fmt.Printf("%-14s %s%s\n", b.Name, b.Suite, note)
		}
		return
	}
	if *bench == "" {
		log.Fatal("pass -bench <name> or -list")
	}
	b := workloads.Lookup(*bench)
	if b == nil {
		log.Fatalf("unknown benchmark %q (see -list)", *bench)
	}

	// Baseline run.
	base := b.Build()
	mb := vm.NewBaseline(base, vm.DefaultCosts)
	baseV, err := mb.Run("main")
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}

	// Alaska run.
	opt := compiler.DefaultOptions
	if b.StrictAliasingViolation || *noHoist {
		opt.Hoisting = false
	}
	if *noTrack {
		opt.Tracking = false
	}
	mod := b.Build()
	st, err := compiler.Transform(mod, opt)
	if err != nil {
		log.Fatalf("transform: %v", err)
	}
	costs := vm.DefaultCosts
	costs.Poll = b.PollCost
	ma, err := vm.NewAlaska(mod, costs)
	if err != nil {
		log.Fatal(err)
	}
	alaskaV, err := ma.Run("main")
	if err != nil {
		log.Fatalf("alaska: %v", err)
	}

	fmt.Printf("benchmark        %s (%s)\n", b.Name, b.Suite)
	fmt.Printf("result           baseline=%d alaska=%d (must match: %v)\n", baseV, alaskaV, baseV == alaskaV)
	fmt.Printf("cycles           baseline=%d alaska=%d\n", mb.Cycles, ma.Cycles)
	fmt.Printf("overhead         %+.1f%% (paper reports %+.1f%%)\n",
		float64(ma.Cycles-mb.Cycles)/float64(mb.Cycles)*100, b.PaperOverhead)
	fmt.Printf("compiler         hoisting=%v tracking=%v\n", opt.Hoisting, opt.Tracking)
	fmt.Printf("  allocations    %d replaced with halloc\n", st.AllocsReplaced)
	fmt.Printf("  translations   %d inserted (%d hoisted to preheaders, %d reused by dominance)\n",
		st.Translates, st.Hoisted, st.ReusedDominated)
	fmt.Printf("  escapes        %d pinned before external calls\n", st.EscapesPinned)
	fmt.Printf("  safepoints     %d inserted\n", st.Safepoints)
	fmt.Printf("  pin sets       max %d slots per frame\n", st.MaxPinSetSize)
	fmt.Printf("  code size      %d -> %d instructions (%.2fx)\n", st.InstrsBefore, st.InstrsAfter, st.CodeGrowth())
	rt := ma.Runtime.Stats()
	fmt.Printf("runtime          hallocs=%d translates=%d pins=%d\n",
		rt.Hallocs.Load(), rt.Translates.Load(), rt.Pins.Load())
	if *dumpIR {
		for _, f := range mod.Funcs {
			fmt.Println()
			fmt.Print(f.String())
		}
	}
	if err := ma.Close(); err != nil {
		log.Fatal(err)
	}
}
