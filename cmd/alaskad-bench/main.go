// Command alaskad-bench is the tracked hot-path benchmark runner: it
// boots an in-process alaskad on a loopback socket, drives the GET-hit,
// GET-miss, SET, and pipelined-GET shapes through real TCP, and emits
// BENCH_alaskad.json — ops/s, ns/op, B/op, allocs/op, and latency
// percentiles per shape — so the repository carries a recorded
// performance trajectory instead of anecdotes. The nightly CI job runs
// it with -max-get-allocs 0, failing the build if the steady-state GET
// path ever allocates again.
//
// Usage:
//
//	alaskad-bench -out BENCH_alaskad.json -ops 200000
//	alaskad-bench -backend anchorage -value-size 1024
//	alaskad-bench -max-get-allocs 0   # exit 1 on GET-hit allocs/op > 0
//
// Allocation accounting is process-wide (runtime.MemStats deltas over
// the measured window, client and server both in-process), which is
// exactly the property the zero-alloc request path promises: nothing in
// the whole serve loop allocates once warm. An existing out file's
// "baseline" block is preserved verbatim, so the pre-optimization
// numbers stay in the file as the comparison anchor.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"runtime"
	"time"

	"alaska/internal/anchorage"
	"alaska/internal/kv"
	"alaska/internal/rt"
	"alaska/internal/server"
	"alaska/internal/stats"
	"alaska/internal/wal"
	"alaska/internal/ycsb"
)

// result is one benchmark shape's measurement.
type result struct {
	Name        string  `json:"name"`
	Ops         int     `json:"ops"`
	NsPerOp     float64 `json:"ns_per_op"`
	OpsPerSec   float64 `json:"ops_per_s"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	P50Us       float64 `json:"p50_us"`
	P99Us       float64 `json:"p99_us"`
	P999Us      float64 `json:"p999_us"`
	// Ceiling-churn fields: cache effectiveness under a fixed -m budget.
	HitRate          float64 `json:"hit_rate,omitempty"`
	RSSBytes         uint64  `json:"rss_bytes,omitempty"`
	HitRatePerRSSMiB float64 `json:"hit_rate_per_rss_mib,omitempty"`
}

// run is one full runner invocation's output.
type run struct {
	Note      string   `json:"note,omitempty"`
	Generated string   `json:"generated"`
	Commit    string   `json:"commit,omitempty"`
	Go        string   `json:"go"`
	GOOS      string   `json:"goos"`
	GOARCH    string   `json:"goarch"`
	CPUs      int      `json:"cpus"`
	Backend   string   `json:"backend"`
	ValueSize int      `json:"value_bytes"`
	Pipeline  int      `json:"pipeline_depth"`
	Results   []result `json:"results"`
}

// file is the BENCH_alaskad.json layout: the pre-optimization baseline
// is carried forward verbatim; "current" is replaced by each run.
type file struct {
	Schema   string          `json:"schema"`
	Baseline json.RawMessage `json:"baseline,omitempty"`
	Current  run             `json:"current"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("alaskad-bench: ")
	out := flag.String("out", "BENCH_alaskad.json", "output JSON path")
	backendName := flag.String("backend", "malloc", "heap backend: malloc|mesh|anchorage")
	ops := flag.Int("ops", 100000, "measured operations per shape")
	valueSize := flag.Int("value-size", 512, "value payload bytes")
	pipeline := flag.Int("pipeline", 32, "pipelined-GET burst depth")
	note := flag.String("note", "", "free-form provenance note stored in the result")
	commit := flag.String("commit", "", "commit id stored in the result")
	maxGetAllocs := flag.Float64("max-get-allocs", -1, "fail (exit 1) if get_hit allocs/op exceeds this; negative disables")
	churnCeiling := flag.Uint64("churn-ceiling", 8<<20, "store-wide memory cap for the ceiling_churn_* shapes; 0 skips them")
	flag.Parse()

	backend := newBackend(*backendName)

	store := kv.NewShardedStore(backend, 8, 0)
	srv := server.New(store, server.Config{
		Addr:    "127.0.0.1:0",
		Version: "bench",
		// The maintenance goroutine stays almost silent so the per-op
		// numbers measure the request path, not background sweeps.
		MaintainInterval: time.Hour,
	})
	if err := srv.Listen(); err != nil {
		log.Fatalf("listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Shutdown(2 * time.Second)

	cl, err := server.Dial(srv.Addr())
	if err != nil {
		log.Fatalf("dial: %v", err)
	}
	defer cl.Close()

	val := make([]byte, *valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	if err := cl.Set("bench:key", 7, val); err != nil {
		log.Fatalf("prime: %v", err)
	}

	cur := run{
		Note:      *note,
		Generated: time.Now().UTC().Format(time.RFC3339),
		Commit:    *commit,
		Go:        runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Backend:   *backendName,
		ValueSize: *valueSize,
		Pipeline:  *pipeline,
	}

	cur.Results = append(cur.Results, measure("get_hit", *ops, func() error {
		_, _, ok, err := cl.Get("bench:key")
		if err == nil && !ok {
			return fmt.Errorf("unexpected miss")
		}
		return err
	}))
	cur.Results = append(cur.Results, measureNoInstr(*backendName, *ops, *valueSize))
	cur.Results = append(cur.Results, measure("get_miss", *ops, func() error {
		_, _, ok, err := cl.Get("bench:nosuchkey")
		if err == nil && ok {
			return fmt.Errorf("unexpected hit")
		}
		return err
	}))
	cur.Results = append(cur.Results, measure("set", *ops, func() error {
		return cl.Set("bench:key", 7, val)
	}))
	cur.Results = append(cur.Results, measurePipelined(srv.Addr(), *ops, *pipeline, *valueSize))
	cur.Results = append(cur.Results, measurePersist(*backendName, *ops, *valueSize)...)

	// Ceiling churn: the same fixed -m budget across all three backends,
	// zipfian get + set-on-miss over a keyspace that dwarfs the ceiling.
	// The figure of merit is hit rate per RSS MiB: a defragmenting heap
	// keeps more live values resident for the same budget.
	if *churnCeiling > 0 {
		for _, name := range []string{"malloc", "mesh", "anchorage"} {
			cur.Results = append(cur.Results, measureCeilingChurn(name, *churnCeiling, *ops, *valueSize))
		}
	}

	for _, r := range cur.Results {
		extra := ""
		if r.HitRate > 0 {
			extra = fmt.Sprintf("  hit_rate=%.3f rss=%dB hit/MiB=%.4f", r.HitRate, r.RSSBytes, r.HitRatePerRSSMiB)
		}
		log.Printf("%-22s %9.0f ops/s  %8.0f ns/op  %7.1f B/op  %6.3f allocs/op  p99=%.1fµs%s",
			r.Name, r.OpsPerSec, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp, r.P99Us, extra)
	}

	// Preserve an existing baseline block; the current block is replaced.
	f := file{Schema: "alaskad-bench/v1", Current: cur}
	if prev, err := os.ReadFile(*out); err == nil {
		var old file
		if json.Unmarshal(prev, &old) == nil && len(old.Baseline) > 0 {
			f.Baseline = old.Baseline
		}
	}
	enc, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		log.Fatalf("marshal: %v", err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		log.Fatalf("write %s: %v", *out, err)
	}
	log.Printf("wrote %s", *out)

	if *maxGetAllocs >= 0 {
		// The measurement is whole-process Mallocs, and the event-driven
		// connection core's worker rendezvous consumes runtime-internal
		// allocations (sudog cache refills after each GC cycle) that are
		// per-run, not per-op. A real hot-path regression is quantized at
		// >= 1 alloc/op, so tolerate a small absolute count per run; the
		// AllocsPerRun unit guards in internal/server pin the engine
		// itself at exactly 0.
		noise := 64.0 / float64(*ops)
		for _, r := range cur.Results {
			if r.Name == "get_hit" && r.AllocsPerOp > *maxGetAllocs+noise {
				log.Fatalf("REGRESSION: get_hit allocs/op = %.5f exceeds budget %.3f (+%.5f run noise floor)",
					r.AllocsPerOp, *maxGetAllocs, noise)
			}
		}
	}
}

func newBackend(name string) kv.Backend {
	switch name {
	case "malloc":
		return kv.NewMallocBackend()
	case "mesh":
		return kv.NewMeshBackend(1)
	case "anchorage":
		ab, err := kv.NewAnchorageBackend(anchorage.DefaultConfig(), rt.WithPinMode(rt.CountedPins))
		if err != nil {
			log.Fatalf("anchorage backend: %v", err)
		}
		return ab
	default:
		log.Fatalf("unknown -backend %q", name)
		return nil
	}
}

// measureNoInstr reruns the GET-hit shape against a second server with
// DisableInstrumentation set, so the file carries a metrics-on vs.
// metrics-off A/B for the same workload. The delta between get_hit and
// get_hit_noinstr is the whole-plane observability tax: per-opcode
// histograms, byte counters, and slow-op threshold checks.
func measureNoInstr(backendName string, n, valueSize int) result {
	store := kv.NewShardedStore(newBackend(backendName), 8, 0)
	srv := server.New(store, server.Config{
		Addr:                   "127.0.0.1:0",
		Version:                "bench-noinstr",
		MaintainInterval:       time.Hour,
		DisableInstrumentation: true,
	})
	if err := srv.Listen(); err != nil {
		log.Fatalf("noinstr: listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Shutdown(2 * time.Second)

	cl, err := server.Dial(srv.Addr())
	if err != nil {
		log.Fatalf("noinstr: dial: %v", err)
	}
	defer cl.Close()

	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	if err := cl.Set("bench:key", 7, val); err != nil {
		log.Fatalf("noinstr prime: %v", err)
	}
	return measure("get_hit_noinstr", n, func() error {
		_, _, ok, err := cl.Get("bench:key")
		if err == nil && !ok {
			return fmt.Errorf("unexpected miss")
		}
		return err
	})
}

// measurePersist reruns the GET-hit and SET shapes against a server
// with the pack log attached, so the file carries a persistence-on vs.
// persistence-off A/B for the same workload. The delta between set and
// set_persist is the logging tax the ring buys down: framing + CRC into
// an in-memory ring, with the actual write+fsync on a background
// goroutine. get_hit_persist should be indistinguishable from get_hit
// (reads are never logged).
func measurePersist(backendName string, n, valueSize int) []result {
	dir, err := os.MkdirTemp("", "alaskad-bench-wal-")
	if err != nil {
		log.Fatalf("persist: tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	wlog, err := wal.Open(wal.Options{
		Dir: dir,
		// No background CRC audit during measurement: its scan buffers
		// would show up in the process-wide allocation deltas.
		AuditInterval: -1,
	})
	if err != nil {
		log.Fatalf("persist: wal open: %v", err)
	}
	store := kv.NewShardedStore(newBackend(backendName), 8, 0)
	if err := wlog.Start(store); err != nil {
		log.Fatalf("persist: wal start: %v", err)
	}
	store.SetMutationLog(wlog)
	srv := server.New(store, server.Config{
		Addr:             "127.0.0.1:0",
		Version:          "bench-persist",
		MaintainInterval: time.Hour,
		WAL:              wlog,
	})
	if err := srv.Listen(); err != nil {
		log.Fatalf("persist: listen: %v", err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Shutdown(2 * time.Second)

	cl, err := server.Dial(srv.Addr())
	if err != nil {
		log.Fatalf("persist: dial: %v", err)
	}
	defer cl.Close()

	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	if err := cl.Set("bench:key", 7, val); err != nil {
		log.Fatalf("persist prime: %v", err)
	}
	rs := []result{measure("get_hit_persist", n, func() error {
		_, _, ok, err := cl.Get("bench:key")
		if err == nil && !ok {
			return fmt.Errorf("unexpected miss")
		}
		return err
	})}
	rs = append(rs, measure("set_persist", n, func() error {
		return cl.Set("bench:key", 7, val)
	}))
	return rs
}

// measureCeilingChurn boots a fresh capped server on the named backend
// and churns it: zipfian gets with set-on-miss over a keyspace ~4x the
// ceiling, background maintenance live so defragmenting backends get to
// defragment. Reports hit rate, end-of-run RSS, and hit rate per RSS
// MiB, and fails hard if charged bytes ever end above the ceiling.
func measureCeilingChurn(backendName string, ceiling uint64, n, valueSize int) result {
	store := kv.NewShardedStore(newBackend(backendName), 8, ceiling)
	srv := server.New(store, server.Config{
		Addr:             "127.0.0.1:0",
		Version:          "bench-churn",
		MaintainInterval: 5 * time.Millisecond,
	})
	if err := srv.Listen(); err != nil {
		log.Fatalf("churn %s: listen: %v", backendName, err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Shutdown(2 * time.Second)

	cl, err := server.Dial(srv.Addr())
	if err != nil {
		log.Fatalf("churn %s: dial: %v", backendName, err)
	}
	defer cl.Close()

	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	records := int(4 * ceiling / uint64(valueSize))
	gen, err := ycsb.NewGenerator(ycsb.WorkloadC, records, valueSize, 1)
	if err != nil {
		log.Fatalf("churn %s: %v", backendName, err)
	}
	op := func() (bool, error) {
		key := gen.Next().Key
		_, _, ok, err := cl.Get(key)
		if err != nil || ok {
			return ok, err
		}
		return false, cl.Set(key, 0, val)
	}
	for i := 0; i < 2000; i++ {
		if _, err := op(); err != nil {
			log.Fatalf("churn %s warmup: %v", backendName, err)
		}
	}
	var hits, misses int
	lat := stats.NewLatencyRecorder()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		hit, err := op()
		if err != nil {
			log.Fatalf("churn %s: %v", backendName, err)
		}
		lat.Record(time.Since(t0))
		if hit {
			hits++
		} else {
			misses++
		}
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	snap := store.Snapshot()
	if snap.Bytes > snap.LimitMaxbytes {
		log.Fatalf("churn %s: bytes %d exceeds limit_maxbytes %d", backendName, snap.Bytes, snap.LimitMaxbytes)
	}
	r := summarize("ceiling_churn_"+backendName, n, wall, &before, &after, lat, 1)
	r.HitRate = float64(hits) / float64(hits+misses)
	r.RSSBytes = snap.RSS
	if snap.RSS > 0 {
		r.HitRatePerRSSMiB = r.HitRate / (float64(snap.RSS) / (1 << 20))
	}
	return r
}

// measure runs op n times after a warmup, collecting wall-clock
// latency per op and process-wide allocation deltas.
func measure(name string, n int, op func() error) result {
	for i := 0; i < 2000; i++ {
		if err := op(); err != nil {
			log.Fatalf("%s warmup: %v", name, err)
		}
	}
	lat := stats.NewLatencyRecorder()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		if err := op(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		lat.Record(time.Since(t0))
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return summarize(name, n, wall, &before, &after, lat, 1)
}

// measurePipelined writes bursts of depth pipelined gets per round trip
// over a raw connection, the framing where per-op allocation hurts most.
func measurePipelined(addr string, n, depth, valueSize int) result {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		log.Fatalf("pipelined dial: %v", err)
	}
	defer c.Close()
	r := bufio.NewReaderSize(c, 64<<10)
	w := bufio.NewWriterSize(c, 64<<10)
	req := bytes.Repeat([]byte("get bench:key\r\n"), depth)
	respLen := len(fmt.Sprintf("VALUE bench:key 7 %d\r\n", valueSize)) + valueSize + 2 + len("END\r\n")
	resp := make([]byte, respLen*depth)
	burst := func() error {
		if _, err := w.Write(req); err != nil {
			return err
		}
		if err := w.Flush(); err != nil {
			return err
		}
		for off := 0; off < len(resp); {
			m, err := r.Read(resp[off:])
			if err != nil {
				return err
			}
			off += m
		}
		return nil
	}
	rounds := n / depth
	if rounds < 1 {
		rounds = 1
	}
	for i := 0; i < 100; i++ {
		if err := burst(); err != nil {
			log.Fatalf("pipelined warmup: %v", err)
		}
	}
	lat := stats.NewLatencyRecorder()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		if err := burst(); err != nil {
			log.Fatalf("pipelined: %v", err)
		}
		lat.Record(time.Since(t0))
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if !bytes.HasSuffix(resp, []byte("END\r\n")) {
		log.Fatalf("pipelined: malformed trailing response %q", resp[len(resp)-16:])
	}
	// Latency was recorded per burst; per-op numbers divide by depth.
	return summarize(fmt.Sprintf("get_pipelined%d", depth), rounds*depth, wall, &before, &after, lat, depth)
}

func summarize(name string, ops int, wall time.Duration, before, after *runtime.MemStats, lat *stats.LatencyRecorder, latDiv int) result {
	us := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 / float64(latDiv) }
	return result{
		Name:        name,
		Ops:         ops,
		NsPerOp:     float64(wall.Nanoseconds()) / float64(ops),
		OpsPerSec:   float64(ops) / wall.Seconds(),
		BytesPerOp:  float64(after.TotalAlloc-before.TotalAlloc) / float64(ops),
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / float64(ops),
		P50Us:       us(lat.Percentile(50)),
		P99Us:       us(lat.Percentile(99)),
		P999Us:      us(lat.Percentile(99.9)),
	}
}
