// Command defrag-bench regenerates the paper's defragmentation results:
// Figure 9 (Redis RSS over time under four allocators), Figure 10 (the
// envelope of control), and Figure 11 (the large-memory variant).
//
// Usage:
//
//	defrag-bench -figure 9              # four RSS curves + summary
//	defrag-bench -figure 9 -scale 1.0   # full 100 MiB maxmemory run
//	defrag-bench -figure 10             # control-parameter sweep
//	defrag-bench -figure 11             # large-workload variant
//	defrag-bench -figure 9 -csv         # curves as CSV (time_s, bytes)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"alaska/internal/figures"
	"alaska/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("defrag-bench: ")
	figure := flag.Int("figure", 9, "figure to regenerate (9, 10, or 11)")
	scale := flag.Float64("scale", 0.25, "fraction of the paper's 100 MiB maxmemory")
	csv := flag.Bool("csv", false, "emit the RSS curves as CSV")
	flag.Parse()

	switch *figure {
	case 9:
		runFigure9(*scale, *csv)
	case 10:
		runFigure10(*scale, *csv)
	case 11:
		runFigure11(*scale, *csv)
	default:
		log.Fatalf("unknown figure %d (want 9, 10, or 11)", *figure)
	}
}

func printCurves(res map[string]figures.DefragResult) {
	var series []*stats.Series
	for _, name := range figures.Backends {
		series = append(series, res[name].Series)
	}
	if err := stats.WriteCSV(os.Stdout, series); err != nil {
		log.Fatal(err)
	}
}

func summarize(res map[string]figures.DefragResult) {
	base := res["baseline"]
	var rows [][]string
	for _, name := range figures.Backends {
		r := res[name]
		vsBase := 1 - float64(r.FinalRSS)/float64(base.FinalRSS)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(r.PeakRSS)/1e6),
			fmt.Sprintf("%.1f", float64(r.FinalRSS)/1e6),
			fmt.Sprintf("%.1f", float64(r.Active)/1e6),
			fmt.Sprintf("%.1f%%", vsBase*100),
			fmt.Sprintf("%v", r.Pauses),
		})
	}
	if err := stats.Table(os.Stdout,
		[]string{"backend", "peak_MB", "final_MB", "active_MB", "saving_vs_baseline", "pause_total"}, rows); err != nil {
		log.Fatal(err)
	}
}

func runFigure9(scale float64, csv bool) {
	res, err := figures.Figure9(figures.DefaultDefragConfig(scale))
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		printCurves(res)
		return
	}
	summarize(res)
	fmt.Println("\npaper: Anchorage reduces Redis RSS ~300 -> ~150 MiB (40%), on par with activedefrag; Mesh partial.")
}

func runFigure10(scale float64, csv bool) {
	base := figures.DefaultDefragConfig(scale)
	points, err := figures.Figure10(base,
		[]float64{1.15, 1.4, 1.8, 2.6},
		[]float64{0.02, 0.08, 0.25},
		[]float64{0.05, 0.2, 0.6},
	)
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		lo, hi := figures.Envelope(points)
		if err := stats.WriteCSV(os.Stdout, []*stats.Series{lo, hi}); err != nil {
			log.Fatal(err)
		}
		return
	}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmt.Sprintf("[%.2f,%.2f]", p.FragLow, p.FragHigh),
			fmt.Sprintf("%.2f", p.OverheadHigh),
			fmt.Sprintf("%.2f", p.Alpha),
			fmt.Sprintf("%.1f", float64(p.Result.FinalRSS)/1e6),
			fmt.Sprintf("%.3f", p.PauseFraction),
		})
	}
	if err := stats.Table(os.Stdout,
		[]string{"frag_bounds", "O_ub", "alpha", "final_MB", "pause_fraction"}, rows); err != nil {
		log.Fatal(err)
	}
	lo, hi := figures.Envelope(points)
	mid := lo.Points[len(lo.Points)/2].T
	fmt.Printf("\nenvelope at %v: %.1f - %.1f MB (the operator's tradeoff space)\n",
		mid, lo.At(mid)/1e6, hi.At(mid)/1e6)
}

func runFigure11(scale float64, csv bool) {
	res, err := figures.Figure11(scale)
	if err != nil {
		log.Fatal(err)
	}
	if csv {
		printCurves(res)
		return
	}
	summarize(res)
	fmt.Println("\npaper: at >100 GiB, Anchorage converges to activedefrag's steady state, but more slowly (overhead-bounded).")
}
